// Package verify is the differential correctness and fault-injection
// harness for the pipelined build. It generates randomized corpora
// from a seed, builds each one through the concurrent pipelined
// executor AND through every trusted baseline (the reference serial
// indexer plus the four §II baselines), and asserts the resulting
// indexes are term-for-term identical — the paper's central claim that
// round-robin buffer consumption keeps postings docID-sorted exactly
// like a serial indexer. A chaos layer injects faults (slow and
// failing reads, mid-stream stage errors, cancellations, corrupted
// index bytes) and asserts the pipeline either produces a verified-
// correct index or fails with a typed error and zero leaked
// goroutines.
package verify

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"math/rand"
	"strings"

	"fastinvert/internal/corpus"
)

// GenConfig parameterizes one randomized corpus. Everything is derived
// deterministically from Seed: the same config always generates
// byte-identical files, so any failure reproduces from its seed alone.
type GenConfig struct {
	Seed        int64
	Files       int
	DocsPerFile int

	// VocabSize, ZipfS and ZipfV shape the synthetic vocabulary and
	// its Zipf-skewed term frequencies (the skew drives the sampling-
	// based CPU/GPU split, so it must be present for the differential
	// run to exercise the real assignment).
	VocabSize int
	ZipfS     float64
	ZipfV     float64

	// MeanDocTokens bounds document length: each document draws
	// 1..2*MeanDocTokens tokens uniformly.
	MeanDocTokens int

	// EmptyDocRatio is the chance a document is whitespace-only
	// (dropped identically by every build path — the docID spaces must
	// still agree).
	EmptyDocRatio float64

	// DupDocRatio is the chance a document repeats the previous
	// document verbatim (duplicate content must not merge postings).
	DupDocRatio float64

	// EdgeCaseRatio is the chance a token comes from the edge-case
	// pool instead of the vocabulary: stop words, one-letter and
	// 300-byte tokens, digits, accented and non-Latin scripts, mixed
	// case, stemming families, punctuation-glued and invalid-UTF-8
	// bytes.
	EdgeCaseRatio float64

	// Compressed stores files gzipped, exercising the decompress stage.
	Compressed bool
}

// DefaultGenConfig derives a small but adversarial corpus shape from a
// seed: file count, document counts and compression all vary with the
// seed so a sweep of seeds covers different pipeline shapes.
func DefaultGenConfig(seed int64) GenConfig {
	h := uint64(seed)*0x9E3779B97F4A7C15 + 0x1234
	return GenConfig{
		Seed:          seed,
		Files:         2 + int(h%3),    // 2..4 container files
		DocsPerFile:   5 + int(h>>8%6), // 5..10 docs per file
		VocabSize:     300 + int(h>>16%200),
		ZipfS:         1.2,
		ZipfV:         2.0,
		MeanDocTokens: 30,
		EmptyDocRatio: 0.08,
		DupDocRatio:   0.08,
		EdgeCaseRatio: 0.15,
		Compressed:    h>>4%2 == 0,
	}
}

// edgePool holds the tokens most likely to break agreement between
// build paths: normalization, stemming, trie-collection routing and
// tokenization all see their corner cases here. None may contain the
// document delimiter's control bytes.
var edgePool = []string{
	"the", "and", "of", "is", // stop words
	"a", "i", "x", // single-letter
	"0", "42", "4294967295", "00123", // numeric
	"héllo", "naïve", "café", // accented Latin
	"日本語", "данные", "αβγδ", // non-Latin scripts
	"Mixed", "UPPER", "TitleCase", // case folding
	"running", "runs", "ran", "runner", // stemming family
	"connection", "connected", "connecting", // Porter suite
	strings.Repeat("z", 300), // very long token
	"a_b-c.d", "x+y=z", "(paren)", "semi;colon",
	"\xff\xfe\xfd", "ab\xc3\x28cd", // invalid UTF-8 sequences
}

// Source is a deterministic randomized corpus implementing
// corpus.Source. Files generate lazily and reproducibly: file i's
// bytes depend only on (GenConfig, i), so the source can be re-read
// (the engine's sampling phase reads every file twice).
type Source struct {
	cfg   GenConfig
	vocab []string
}

// NewSource builds the vocabulary and returns the corpus.
func NewSource(cfg GenConfig) *Source {
	if cfg.Files < 1 {
		cfg.Files = 1
	}
	if cfg.DocsPerFile < 1 {
		cfg.DocsPerFile = 1
	}
	if cfg.VocabSize < 2 {
		cfg.VocabSize = 2
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.ZipfV < 1 {
		cfg.ZipfV = 2.0
	}
	if cfg.MeanDocTokens < 1 {
		cfg.MeanDocTokens = 16
	}
	s := &Source{cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5EED_0DD5))
	s.vocab = make([]string, cfg.VocabSize)
	var sb strings.Builder
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for i := range s.vocab {
		sb.Reset()
		n := 2 + rng.Intn(9)
		for j := 0; j < n; j++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		s.vocab[i] = sb.String()
	}
	return s
}

// Config returns the generating configuration.
func (s *Source) Config() GenConfig { return s.cfg }

// NumFiles implements corpus.Source.
func (s *Source) NumFiles() int { return s.cfg.Files }

// FileName implements corpus.Source.
func (s *Source) FileName(i int) string {
	ext := ".txt"
	if s.cfg.Compressed {
		ext = ".txt.gz"
	}
	return fmt.Sprintf("verify-%05d%s", i, ext)
}

// ReadFile implements corpus.Source.
func (s *Source) ReadFile(i int) ([]byte, bool, error) {
	if i < 0 || i >= s.cfg.Files {
		return nil, false, fmt.Errorf("verify: file %d out of range", i)
	}
	plain := s.generatePlain(i)
	if !s.cfg.Compressed {
		return plain, false, nil
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(plain)
	zw.Close()
	return buf.Bytes(), true, nil
}

func (s *Source) generatePlain(fileIdx int) []byte {
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ int64(fileIdx+1)*0x1E3779B97F4A7C15))
	zipf := rand.NewZipf(rng, s.cfg.ZipfS, s.cfg.ZipfV, uint64(s.cfg.VocabSize-1))

	var out bytes.Buffer
	var prev string
	for d := 0; d < s.cfg.DocsPerFile; d++ {
		out.WriteString(corpus.DocDelim)
		switch r := rng.Float64(); {
		case r < s.cfg.EmptyDocRatio:
			// Whitespace-only document: every path drops it before
			// assigning a docID.
			out.WriteString("  \n\t ")
			prev = ""
		case r < s.cfg.EmptyDocRatio+s.cfg.DupDocRatio && prev != "":
			out.WriteString(prev)
		default:
			start := out.Len()
			n := 1 + rng.Intn(2*s.cfg.MeanDocTokens)
			for t := 0; t < n; t++ {
				if rng.Float64() < s.cfg.EdgeCaseRatio {
					out.WriteString(edgePool[rng.Intn(len(edgePool))])
				} else {
					out.WriteString(s.vocab[zipf.Uint64()])
				}
				if t%11 == 10 {
					out.WriteByte('\n')
				} else {
					out.WriteByte(' ')
				}
			}
			prev = out.String()[start:]
		}
	}
	return out.Bytes()
}
