package verify

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fastinvert/internal/baselines"
	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/gpu"
	"fastinvert/internal/postings"
	"fastinvert/internal/reference"
	"fastinvert/internal/store"
)

// Config shapes one differential run.
type Config struct {
	// Gen describes the randomized corpus; a zero value derives
	// DefaultGenConfig from Seed at run time.
	Gen GenConfig

	// Seed is used when Gen is zero, and always stamped on the result.
	Seed int64

	// Positional builds with per-occurrence positions; the positional
	// reference build then pins them.
	Positional bool

	// Parsers, CPUIndexers and GPUs shape the pipeline. Zero values
	// derive a shape from the seed so a seed sweep covers different
	// round-robin widths (the ordering claim is per-M, Fig. 8/9).
	Parsers     int
	CPUIndexers int
	GPUs        int

	// OutDir receives the pipeline's index; empty selects a temp dir
	// removed when the run ends.
	OutDir string

	// MaxDiffs caps recorded disagreements per comparison (<=0: 8).
	MaxDiffs int
}

// Comparison is one trusted build matched against the pipeline index.
type Comparison struct {
	Name string
	Err  error // trusted build failed (nil normally)
	Diff *DiffReport
}

// Result is the outcome of one differential run.
type Result struct {
	Seed        int64
	Files       int
	Docs        int64
	Terms       int
	Postings    int64
	Structural  *store.VerifyReport // store-level invariants of the pipeline index
	Comparisons []Comparison        // reference + every baseline
}

// OK reports whether the pipeline index passed every check.
func (r *Result) OK() bool {
	for _, c := range r.Comparisons {
		if c.Err != nil || !c.Diff.OK() {
			return false
		}
	}
	return true
}

// Summary renders a one-run report, diff details included on failure.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed %d: %d files, %d docs, %d terms, %d postings",
		r.Seed, r.Files, r.Docs, r.Terms, r.Postings)
	for _, c := range r.Comparisons {
		if c.Err != nil {
			fmt.Fprintf(&sb, "\n  %s: build error: %v", c.Name, c.Err)
			continue
		}
		fmt.Fprintf(&sb, "\n  %s", c.Diff.String())
	}
	return sb.String()
}

// engineConfig derives a small deterministic pipeline shape for a
// differential run: real sampling, concurrent executor, simulated GPU
// scaled down to test size.
func engineConfig(cfg Config) core.Config {
	ec := core.DefaultConfig()
	h := uint64(cfg.Seed) * 0x9E3779B97F4A7C15
	ec.Parsers = cfg.Parsers
	if ec.Parsers <= 0 {
		ec.Parsers = 1 + int(h%3) // 1..3 parsers: different round-robin widths
	}
	ec.CPUIndexers = cfg.CPUIndexers
	ec.GPUs = cfg.GPUs
	if cfg.CPUIndexers <= 0 && cfg.GPUs <= 0 {
		ec.CPUIndexers = 1 + int(h>>8%2)
		ec.GPUs = int(h >> 16 % 2)
	}
	g := gpu.TeslaC1060()
	g.SMs = 4
	g.DeviceMemBytes = 64 << 20
	ec.GPU = g
	ec.GPUThreadBlocks = 8
	ec.Sampling.Ratio = 0.25
	ec.Positional = cfg.Positional
	ec.Concurrent = true
	ec.KeepPerFileStats = false
	return ec
}

// Run executes one differential round: generate the corpus, build it
// through the concurrent pipelined executor, check the store-level
// invariants, then rebuild through the reference indexer and every
// baseline and diff the pipeline's postings against each.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Gen == (GenConfig{}) {
		cfg.Gen = DefaultGenConfig(cfg.Seed)
	}
	cfg.Seed = cfg.Gen.Seed
	src := NewSource(cfg.Gen)

	outDir := cfg.OutDir
	if outDir == "" {
		tmp, err := os.MkdirTemp("", "hetverify-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		outDir = filepath.Join(tmp, "idx")
	}

	res := &Result{Seed: cfg.Seed, Files: src.NumFiles()}
	rep, err := buildPipeline(ctx, cfg, src, outDir, nil)
	if err != nil {
		return nil, fmt.Errorf("verify: pipeline build (seed %d): %w", cfg.Seed, err)
	}
	res.Docs = rep.Docs

	sv, err := store.Verify(outDir)
	if err != nil {
		return nil, fmt.Errorf("verify: structural check (seed %d): %w", cfg.Seed, err)
	}
	res.Structural = sv
	res.Terms = sv.Terms
	res.Postings = sv.Postings

	pipeline, err := readBack(outDir)
	if err != nil {
		return nil, fmt.Errorf("verify: read-back (seed %d): %w", cfg.Seed, err)
	}

	// Reference serial indexer: the ground truth, positional when the
	// pipeline is.
	var ref *reference.Index
	if cfg.Positional {
		ref, err = reference.BuildPositionalFromSource(src)
	} else {
		ref, err = reference.BuildFromSource(src)
	}
	cmp := Comparison{Name: "reference", Err: err}
	if err == nil {
		cmp.Diff = DiffLists("reference", pipeline, ref.Lists, cfg.MaxDiffs)
		if ref.Docs != rep.Docs {
			cmp.Diff.Diffs = append(cmp.Diff.Diffs, TermDiff{
				Term: "(corpus)", Kind: "doc-count",
				Detail: fmt.Sprintf("pipeline indexed %d docs, reference %d", rep.Docs, ref.Docs),
			})
		}
	}
	res.Comparisons = append(res.Comparisons, cmp)

	// Every baseline through the shared Build seam.
	for _, b := range baselines.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bres, err := b.Build(src)
		cmp := Comparison{Name: b.Name, Err: err}
		if err == nil {
			cmp.Diff = DiffLists(b.Name, pipeline, bres.Lists, cfg.MaxDiffs)
		}
		res.Comparisons = append(res.Comparisons, cmp)
	}

	// Merged-path parity, run twice with different codec selections:
	// first a forced-varbyte merge (the v1-compatible format), then a
	// self-tuned merge where the selector picks a codec per list. Each
	// merge re-verifies the structure (which now validates the merged
	// file against the runs) and re-reads every term through the merged
	// file; both read-backs must match the per-run assembly read above,
	// proving term-by-term parity between any two codec selections.
	for _, mc := range []struct{ name, codec string }{
		{"merged-varbyte", "varbyte"},
		{"merged", "auto"},
	} {
		mcmp := Comparison{Name: mc.name}
		mergedLists, err := mergeAndReadBack(outDir, mc.codec)
		mcmp.Err = err
		if err == nil {
			mcmp.Diff = DiffLists(mc.name, mergedLists, pipeline, cfg.MaxDiffs)
		}
		res.Comparisons = append(res.Comparisons, mcmp)
	}

	// Ranked retrieval differential over the final (auto-codec, blocked)
	// merged index: MaxScore and Block-Max-WAND against the exhaustive
	// scorer, plus the skip-table bounds check on every list.
	res.Comparisons = append(res.Comparisons, rankComparisons(outDir, pipeline, cfg.MaxDiffs)...)
	return res, nil
}

// mergeAndReadBack merges the index with the given codec selection
// ("auto" or a forced codec name), checks the merged file is both
// structurally valid and actually served, and reads every term back
// through it.
func mergeAndReadBack(dir, codec string) (map[string]*postings.List, error) {
	idx, err := store.OpenIndexWith(dir, store.ReaderOptions{MergeCodec: codec})
	if err != nil {
		return nil, err
	}
	if _, err := idx.Merge(); err != nil {
		idx.Close()
		return nil, fmt.Errorf("verify: merge: %w", err)
	}
	idx.Close()
	if _, err := store.Verify(dir); err != nil {
		return nil, fmt.Errorf("verify: post-merge structural check: %w", err)
	}
	idx2, err := store.OpenIndex(dir)
	if err != nil {
		return nil, err
	}
	defer idx2.Close()
	if !idx2.MergedActive() {
		return nil, fmt.Errorf("verify: merged file written but not served")
	}
	out := make(map[string]*postings.List, idx2.Terms())
	for _, e := range idx2.Dictionary() {
		l, err := idx2.Postings(e.Term)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", e.Term, err)
		}
		out[e.Term] = l
	}
	st := idx2.Stats()
	if st.MergedHits == 0 || st.RunFallbacks != 0 {
		return nil, fmt.Errorf("verify: merged read-back used the fallback path (%+v)", st)
	}
	return out, nil
}

// buildPipeline runs the concurrent executor over src into outDir.
// hooks is non-nil only under chaos.
func buildPipeline(ctx context.Context, cfg Config, src corpus.Source,
	outDir string, hooks *core.Hooks) (*core.Report, error) {
	ec := engineConfig(cfg)
	ec.OutDir = outDir
	ec.Hooks = hooks
	eng, err := core.New(ec)
	if err != nil {
		return nil, err
	}
	return eng.BuildConcurrentContext(ctx, src)
}

// readBack loads the pipeline's persisted index into a term -> merged
// postings map, the shape the trusted builds produce directly.
func readBack(dir string) (map[string]*postings.List, error) {
	idx, err := store.OpenIndex(dir)
	if err != nil {
		return nil, err
	}
	defer idx.Close()
	out := make(map[string]*postings.List, idx.Terms())
	for _, e := range idx.Dictionary() {
		l, err := idx.Postings(e.Term)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", e.Term, err)
		}
		out[e.Term] = l
	}
	return out, nil
}
