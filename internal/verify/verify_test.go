package verify

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"testing"

	"fastinvert/internal/corpus"
	"fastinvert/internal/postings"
	"fastinvert/internal/reference"
)

// -seeds sets the number of random corpora the differential test
// sweeps (tier-2 runs use 10+; see the Makefile differential target).
var seedCount = flag.Int("seeds", 10, "random corpus seeds for TestDifferential")

// TestDifferential is the paper's end-to-end ordering claim: the
// concurrent pipelined build produces an index identical to the serial
// reference and to all four baselines, on randomized corpora.
func TestDifferential(t *testing.T) {
	for s := 0; s < *seedCount; s++ {
		seed := int64(1000 + 7*s)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(context.Background(), Config{
				Seed:       seed,
				Positional: s%2 == 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Errorf("differential mismatch:\n%s", res.Summary())
			}
			if res.Terms == 0 || res.Postings == 0 {
				t.Errorf("degenerate corpus: %s", res.Summary())
			}
			// Every comparison must actually have run: reference + the
			// full baseline registry.
			if len(res.Comparisons) < 5 {
				t.Errorf("only %d comparisons ran", len(res.Comparisons))
			}
		})
	}
}

// TestGeneratorDeterministic pins the reproduce-from-seed contract:
// identical configs generate identical bytes, different seeds differ.
func TestGeneratorDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(42)
	a, b := NewSource(cfg), NewSource(cfg)
	for i := 0; i < a.NumFiles(); i++ {
		ba, _, err := a.ReadFile(i)
		if err != nil {
			t.Fatal(err)
		}
		bb, _, err := b.ReadFile(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("file %d not deterministic", i)
		}
		// Re-reading the same source must also be stable (the engine's
		// sampling phase reads every file twice).
		bc, _, _ := a.ReadFile(i)
		if !bytes.Equal(ba, bc) {
			t.Fatalf("file %d changed between reads", i)
		}
	}
	other := NewSource(DefaultGenConfig(43))
	if other.NumFiles() == a.NumFiles() {
		oa, _, _ := other.ReadFile(0)
		aa, _, _ := a.ReadFile(0)
		if bytes.Equal(oa, aa) {
			t.Fatal("different seeds generated identical content")
		}
	}
}

// TestGeneratorEdgeCases checks the adversarial content is really in
// the stream: empty documents get dropped before docID assignment, and
// edge-pool tokens appear.
func TestGeneratorEdgeCases(t *testing.T) {
	cfg := GenConfig{
		Seed: 7, Files: 4, DocsPerFile: 40, VocabSize: 100,
		MeanDocTokens: 20, EmptyDocRatio: 0.25, DupDocRatio: 0.2,
		EdgeCaseRatio: 0.3,
	}
	src := NewSource(cfg)
	totalDocs, sawEdge := 0, false
	for i := 0; i < src.NumFiles(); i++ {
		raw, gz, err := src.ReadFile(i)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := corpus.Decompress(raw, gz)
		if err != nil {
			t.Fatal(err)
		}
		docs := corpus.SplitDocs(plain)
		totalDocs += len(docs)
		if bytes.Contains(plain, []byte("日本語")) || bytes.Contains(plain, []byte("héllo")) {
			sawEdge = true
		}
	}
	if totalDocs == cfg.Files*cfg.DocsPerFile {
		t.Errorf("no empty documents were generated (got all %d docs)", totalDocs)
	}
	if totalDocs == 0 {
		t.Fatal("corpus degenerated to zero documents")
	}
	if !sawEdge {
		t.Error("no edge-pool tokens found in 160 documents at ratio 0.3")
	}
}

// TestDiffListsDetectsMismatch proves the differ is not vacuous: every
// mutation class it claims to check is actually reported.
func TestDiffListsDetectsMismatch(t *testing.T) {
	mk := func() map[string]*postings.List {
		return map[string]*postings.List{
			"alpha": {DocIDs: []uint32{1, 5, 9}, TFs: []uint32{2, 1, 3}},
			"beta":  {DocIDs: []uint32{2}, TFs: []uint32{1}},
		}
	}
	cases := []struct {
		name   string
		mutate func(m map[string]*postings.List)
		kind   string
	}{
		{"missing term", func(m map[string]*postings.List) { delete(m, "beta") }, "missing"},
		{"extra term", func(m map[string]*postings.List) {
			m["gamma"] = &postings.List{DocIDs: []uint32{3}, TFs: []uint32{1}}
		}, "extra"},
		{"length", func(m map[string]*postings.List) {
			m["alpha"].DocIDs = m["alpha"].DocIDs[:2]
			m["alpha"].TFs = m["alpha"].TFs[:2]
		}, "length"},
		{"docID", func(m map[string]*postings.List) { m["alpha"].DocIDs[1] = 6 }, "doc-ids"},
		{"tf", func(m map[string]*postings.List) { m["alpha"].TFs[2] = 9 }, "tfs"},
		{"unsorted", func(m map[string]*postings.List) { m["alpha"].DocIDs[1] = 1 }, "unsorted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := mk()
			tc.mutate(got)
			rep := DiffLists("mutated", got, mk(), 8)
			if rep.OK() {
				t.Fatalf("mutation %q not detected", tc.name)
			}
			found := false
			for _, d := range rep.Diffs {
				if d.Kind == tc.kind {
					found = true
				}
			}
			if !found {
				t.Errorf("want a %q diff, got: %s", tc.kind, rep)
			}
		})
	}
	if rep := DiffLists("equal", mk(), mk(), 8); !rep.OK() {
		t.Errorf("identical maps reported diffs: %s", rep)
	}
}

// TestDiffListsPositions pins positional comparison.
func TestDiffListsPositions(t *testing.T) {
	mk := func(pos uint32) map[string]*postings.List {
		return map[string]*postings.List{
			"alpha": {DocIDs: []uint32{1}, TFs: []uint32{2},
				Positions: [][]uint32{{0, pos}}},
		}
	}
	if rep := DiffLists("pos", mk(4), mk(4), 8); !rep.OK() {
		t.Errorf("identical positions reported diffs: %s", rep)
	}
	rep := DiffLists("pos", mk(4), mk(5), 8)
	if rep.OK() || rep.Diffs[0].Kind != "positions" {
		t.Errorf("position mismatch not detected: %s", rep)
	}
}

// TestDifferentialAcrossCorpora sanity-checks the harness end: indexes
// of two different corpora must NOT compare equal.
func TestDifferentialAcrossCorpora(t *testing.T) {
	a, err := reference.BuildFromSource(NewSource(DefaultGenConfig(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := reference.BuildFromSource(NewSource(DefaultGenConfig(2)))
	if err != nil {
		t.Fatal(err)
	}
	if rep := DiffLists("cross", a.Lists, b.Lists, 4); rep.OK() {
		t.Fatal("indexes of different corpora compared equal — the harness is vacuous")
	}
}
