package verify

import (
	"context"
	"errors"
	"testing"
	"time"

	"fastinvert/internal/store"
)

// TestChaosFaultMatrix drives every fault kind through the pipeline
// and asserts the chaos invariant: a verified-correct index or a typed
// error, and zero leaked goroutines. Not parallel — goroutine
// accounting needs a quiet process.
func TestChaosFaultMatrix(t *testing.T) {
	cases := []ChaosConfig{
		{Fault: FaultNone},
		{Fault: FaultSlowRead, Delay: 2 * time.Millisecond},
		{Fault: FaultReadError, At: 0},
		{Fault: FaultReadError, At: 1},
		{Fault: FaultParseError, At: 0},
		{Fault: FaultParseError, At: 1},
		{Fault: FaultIndexError, At: 1},
		{Fault: FaultWriteError, At: 0},
		{Fault: FaultWriteError, At: 1},
		{Fault: FaultCancel, At: 0},
		{Fault: FaultCancel, At: 1},
		{Fault: FaultTruncateRun},
		{Fault: FaultBitFlipRun, Seed: 11},
		{Fault: FaultBitFlipRun, Seed: 12},
		{Fault: FaultTruncateDict},
		{Fault: FaultGarbageDocmap},
		{Fault: FaultTruncateMerged},
		{Fault: FaultBitFlipMerged, Seed: 11},
		{Fault: FaultBitFlipMerged, Seed: 12},
	}
	for _, chaos := range cases {
		chaos := chaos
		t.Run(chaos.Fault.String()+"/"+itoa(chaos.At), func(t *testing.T) {
			res, err := RunChaos(context.Background(), Config{Seed: 77}, chaos)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Errorf("chaos invariant violated: %s", res)
			}
			// Stage faults must surface the injected sentinel, not a
			// mangled or swallowed error.
			switch chaos.Fault {
			case FaultReadError, FaultParseError, FaultIndexError, FaultWriteError:
				if !errors.Is(res.Err, ErrInjected) {
					t.Errorf("want ErrInjected, got %v", res.Err)
				}
			case FaultCancel:
				if !errors.Is(res.Err, context.Canceled) {
					t.Errorf("want context.Canceled, got %v", res.Err)
				}
			case FaultTruncateRun, FaultBitFlipRun, FaultTruncateDict, FaultGarbageDocmap:
				if !errors.Is(res.Err, store.ErrCorruptIndex) {
					t.Errorf("want ErrCorruptIndex, got %v", res.Err)
				}
			case FaultNone, FaultSlowRead:
				if !res.Correct {
					t.Errorf("benign fault must yield a correct index, got err=%v", res.Err)
				}
			case FaultTruncateMerged, FaultBitFlipMerged:
				// The dedicated audit demands detection AND correct
				// fallback; success means both held.
				if !res.Correct {
					t.Errorf("corrupt merged file must degrade gracefully, got err=%v", res.Err)
				}
			}
		})
	}
}

// TestChaosFaultBeyondEnd injects a stage fault at a file index past
// the corpus: it never fires and the build must complete correctly.
func TestChaosFaultBeyondEnd(t *testing.T) {
	res, err := RunChaos(context.Background(), Config{Seed: 33},
		ChaosConfig{Fault: FaultWriteError, At: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct || res.LeakedGoroutines != 0 {
		t.Errorf("unfired fault should verify correct: %s", res)
	}
}

// TestChaosPositional runs a fault and the control group on a
// positional build, where run files are larger and carry position
// blocks.
func TestChaosPositional(t *testing.T) {
	for _, chaos := range []ChaosConfig{
		{Fault: FaultNone},
		{Fault: FaultBitFlipRun, Seed: 5},
	} {
		res, err := RunChaos(context.Background(),
			Config{Seed: 21, Positional: true}, chaos)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Errorf("positional chaos: %s", res)
		}
	}
}

// TestChaosCanceledParent checks an already-canceled caller context.
func TestChaosCanceledParent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunChaos(ctx, Config{Seed: 5}, ChaosConfig{Fault: FaultNone})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TypedError || !errors.Is(res.Err, context.Canceled) {
		t.Errorf("want context.Canceled, got %s", res)
	}
	if res.LeakedGoroutines != 0 {
		t.Errorf("leaked %d goroutines", res.LeakedGoroutines)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
