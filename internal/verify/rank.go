// rank.go extends the differential harness to ranked retrieval: the
// block-max evaluators (MaxScore, Block-Max-WAND) are run query-for-
// query against the exhaustive scorer over the merged pipeline index,
// and every blocked list's skip table is checked against the postings
// it summarizes. The evaluators are exact by construction, so the
// comparison demands bitwise-equal scores in identical order.
package verify

import (
	"context"
	"fmt"
	"sort"

	"fastinvert/internal/postings"
	"fastinvert/internal/search"
	"fastinvert/internal/segment"
	"fastinvert/internal/store"
)

// rankQueryMix derives a seeded query set from a term -> postings map:
// head terms (long, typically blocked lists), a tail term, multi-term
// combinations, a duplicate word, and an unknown. Only terms the
// searcher's normalization leaves unchanged are eligible, so both
// evaluators resolve the same lists.
func rankQueryMix(s *search.Searcher, lists map[string]*postings.List) [][]string {
	type tdf struct {
		term string
		df   int
	}
	cands := make([]tdf, 0, len(lists))
	for term, l := range lists {
		if norm, stop := s.Normalize(term); stop || norm != term {
			continue
		}
		cands = append(cands, tdf{term, l.Len()})
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].df != cands[j].df {
			return cands[i].df > cands[j].df
		}
		return cands[i].term < cands[j].term
	})
	head := make([]string, 0, 4)
	for i := 0; i < len(cands) && i < 4; i++ {
		head = append(head, cands[i].term)
	}
	tail := cands[len(cands)-1].term
	qs := [][]string{
		{head[0]},
		{tail},
		{head[0], tail},
		{head[0], head[0]}, // duplicate word: contributes twice
		{head[0], "zzzunknownzzz"},
	}
	if len(head) >= 2 {
		qs = append(qs, head[:2])
	}
	if len(head) >= 4 {
		qs = append(qs, head)
	}
	return qs
}

// diffTopK runs one query through the exhaustive scorer and through
// mode, and returns a TermDiff on any disagreement (nil on exact
// agreement: same docs, same order, bitwise-equal scores).
func diffTopK(s *search.Searcher, mode search.RankMode, k int, q []string) *TermDiff {
	label := fmt.Sprintf("%v k=%d", q, k)
	s.SetRankMode(search.RankExhaustive)
	want, err := s.TopK(k, q...)
	if err != nil {
		return &TermDiff{Term: label, Kind: "topk", Detail: fmt.Sprintf("exhaustive: %v", err)}
	}
	s.SetRankMode(mode)
	got, err := s.TopK(k, q...)
	s.SetRankMode(search.RankExhaustive)
	if err != nil {
		return &TermDiff{Term: label, Kind: "topk", Detail: fmt.Sprintf("%s: %v", mode, err)}
	}
	if len(got) != len(want) {
		return &TermDiff{Term: label, Kind: "topk",
			Detail: fmt.Sprintf("%s returned %d results, exhaustive %d", mode, len(got), len(want))}
	}
	for i := range want {
		if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
			return &TermDiff{Term: label, Kind: "topk",
				Detail: fmt.Sprintf("%s result %d = (%d, %v), exhaustive (%d, %v)",
					mode, i, got[i].Doc, got[i].Score, want[i].Doc, want[i].Score)}
		}
	}
	return nil
}

// rankDiff compares one evaluator against the exhaustive scorer over
// the query mix at several k.
func rankDiff(name string, s *search.Searcher, mode search.RankMode,
	queries [][]string, maxDiffs int) *DiffReport {
	if maxDiffs <= 0 {
		maxDiffs = 8
	}
	rep := &DiffReport{Name: name, GotTerms: len(queries), WantTerms: len(queries)}
	for _, q := range queries {
		for _, k := range []int{3, 10} {
			if d := diffTopK(s, mode, k, q); d != nil {
				if len(rep.Diffs) >= maxDiffs {
					rep.Truncated = true
					return rep
				}
				rep.Diffs = append(rep.Diffs, *d)
			}
		}
	}
	return rep
}

// blockBoundsDiff checks every term's block view against the postings
// map the run-level read-back produced: per-block counts sum to the
// list length, every tf is bounded by the block's stored MaxTF, and
// docIDs ascend through consecutive blocks with each skip entry's
// LastDoc matching its block's final posting.
func blockBoundsDiff(idx *store.IndexReader, lists map[string]*postings.List, maxDiffs int) *DiffReport {
	if maxDiffs <= 0 {
		maxDiffs = 8
	}
	rep := &DiffReport{Name: "block-bounds", GotTerms: len(lists), WantTerms: len(lists)}
	add := func(term, detail string) bool {
		if len(rep.Diffs) >= maxDiffs {
			rep.Truncated = true
			return false
		}
		rep.Diffs = append(rep.Diffs, TermDiff{Term: term, Kind: "block-bounds", Detail: detail})
		return true
	}
	terms := make([]string, 0, len(lists))
	for t := range lists {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, term := range terms {
		want := lists[term]
		tb, err := idx.BlockPostingsCtx(context.Background(), term)
		if err != nil {
			if !add(term, err.Error()) {
				return rep
			}
			continue
		}
		if tb == nil {
			if !add(term, "no block view from merged reader") {
				return rep
			}
			continue
		}
		total, pi := 0, 0
		mismatch := ""
		for _, bl := range tb.Lists {
			prev := int64(-1)
			for b := 0; b < bl.NumBlocks() && mismatch == ""; b++ {
				sk := bl.Skip(b)
				docs, tfs, err := bl.DecodeBlock(b)
				if err != nil {
					mismatch = fmt.Sprintf("block %d: %v", b, err)
					break
				}
				if len(docs) != int(sk.Count) || len(docs) == 0 {
					mismatch = fmt.Sprintf("block %d: %d postings, skip says %d", b, len(docs), sk.Count)
					break
				}
				if docs[len(docs)-1] != sk.LastDoc {
					mismatch = fmt.Sprintf("block %d: last doc %d, skip says %d", b, docs[len(docs)-1], sk.LastDoc)
					break
				}
				for i, doc := range docs {
					if int64(doc) <= prev {
						mismatch = fmt.Sprintf("block %d: doc %d after %d", b, doc, prev)
						break
					}
					prev = int64(doc)
					if tfs[i] > sk.MaxTF {
						mismatch = fmt.Sprintf("block %d: tf %d exceeds stored MaxTF %d", b, tfs[i], sk.MaxTF)
						break
					}
					if pi >= want.Len() || doc != want.DocIDs[pi] || tfs[i] != want.TFs[pi] {
						mismatch = fmt.Sprintf("block %d posting %d: (%d,%d) disagrees with read-back", b, i, doc, tfs[i])
						break
					}
					pi++
				}
				total += len(docs)
			}
		}
		if mismatch == "" && total != want.Len() {
			mismatch = fmt.Sprintf("block view holds %d postings, read-back %d", total, want.Len())
		}
		if mismatch != "" && !add(term, mismatch) {
			return rep
		}
	}
	return rep
}

// rankComparisons reopens the merged index (left behind by the last
// mergeAndReadBack pass, codec-selected and block-laid-out) and runs
// the ranked differential plus the skip-table bounds check.
func rankComparisons(dir string, lists map[string]*postings.List, maxDiffs int) []Comparison {
	idx, err := store.OpenIndex(dir)
	if err != nil {
		return []Comparison{{Name: "rank", Err: err}}
	}
	defer idx.Close()
	if !idx.MergedActive() {
		return []Comparison{{Name: "rank", Err: fmt.Errorf("verify: merged file not served for rank differential")}}
	}
	s := search.New(idx)
	queries := rankQueryMix(s, lists)
	out := []Comparison{
		{Name: "rank-maxscore", Diff: rankDiff("rank-maxscore", s, search.RankMaxScore, queries, maxDiffs)},
		{Name: "rank-bmw", Diff: rankDiff("rank-bmw", s, search.RankBlockMax, queries, maxDiffs)},
		{Name: "block-bounds", Diff: blockBoundsDiff(idx, lists, maxDiffs)},
	}
	return out
}

// liveRankDiffs runs the ranked differential against a live manager at
// a seal/compact boundary: block evaluation over sealed segments (and
// the memtable pseudo-block) must match the exhaustive scorer exactly,
// tombstones falling back transparently.
func liveRankDiffs(m *segment.Manager, lists map[string]*postings.List, maxDiffs int) []TermDiff {
	s := search.NewWithSource(m)
	var diffs []TermDiff
	for _, q := range rankQueryMix(s, lists) {
		if len(diffs) >= maxDiffs && maxDiffs > 0 {
			break
		}
		for _, mode := range []search.RankMode{search.RankAuto, search.RankMaxScore} {
			if d := diffTopK(s, mode, 10, q); d != nil {
				diffs = append(diffs, *d)
				break
			}
		}
	}
	return diffs
}
