// Package stopwords provides the stop-word filter applied as Step 4 of
// every parse (Fig. 3). The default list is the classical SMART-derived
// English list used by most IR systems; callers may build custom sets.
package stopwords

// Set is a stop-word membership filter over lowercase terms. The zero
// value is an empty set that drops nothing.
type Set struct {
	words map[string]struct{}
}

// NewSet builds a Set from the given lowercase words.
func NewSet(words []string) *Set {
	s := &Set{words: make(map[string]struct{}, len(words))}
	for _, w := range words {
		s.words[w] = struct{}{}
	}
	return s
}

// Default returns the standard English stop-word set.
func Default() *Set { return defaultSet }

// Contains reports whether the term is a stop word. It accepts a byte
// slice so the parser hot loop does not allocate; the compiler elides
// the string conversion in map lookups.
func (s *Set) Contains(term []byte) bool {
	if s == nil || s.words == nil {
		return false
	}
	_, ok := s.words[string(term)]
	return ok
}

// ContainsString reports whether the term is a stop word.
func (s *Set) ContainsString(term string) bool {
	if s == nil || s.words == nil {
		return false
	}
	_, ok := s.words[term]
	return ok
}

// Len reports the number of stop words in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.words)
}

var defaultSet = NewSet(defaultWords)

// defaultWords is the classical English stop-word list (the van
// Rijsbergen / SMART core plus the contractions every engine drops).
var defaultWords = []string{
	"a", "about", "above", "after", "again", "against", "all", "am",
	"an", "and", "any", "are", "aren", "as", "at", "be", "because",
	"been", "before", "being", "below", "between", "both", "but", "by",
	"can", "cannot", "could", "couldn", "did", "didn", "do", "does",
	"doesn", "doing", "don", "down", "during", "each", "few", "for",
	"from", "further", "had", "hadn", "has", "hasn", "have", "haven",
	"having", "he", "her", "here", "hers", "herself", "him", "himself",
	"his", "how", "i", "if", "in", "into", "is", "isn", "it", "its",
	"itself", "just", "me", "more", "most", "mustn", "my", "myself",
	"no", "nor", "not", "now", "of", "off", "on", "once", "only", "or",
	"other", "ought", "our", "ours", "ourselves", "out", "over", "own",
	"same", "shan", "she", "should", "shouldn", "so", "some", "such",
	"than", "that", "the", "their", "theirs", "them", "themselves",
	"then", "there", "these", "they", "this", "those", "through", "to",
	"too", "under", "until", "up", "very", "was", "wasn", "we", "were",
	"weren", "what", "when", "where", "which", "while", "who", "whom",
	"why", "will", "with", "won", "would", "wouldn", "you", "your",
	"yours", "yourself", "yourselves",
}
