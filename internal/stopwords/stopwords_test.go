package stopwords

import "testing"

func TestDefaultContainsPaperExamples(t *testing.T) {
	// §II names "the", "to", "and" as the canonical stop words.
	for _, w := range []string{"the", "to", "and"} {
		if !Default().Contains([]byte(w)) {
			t.Errorf("default set missing %q", w)
		}
	}
}

func TestDefaultExcludesContentTerms(t *testing.T) {
	for _, w := range []string{"parallel", "index", "gpu", "zzz", ""} {
		if Default().Contains([]byte(w)) {
			t.Errorf("default set wrongly contains %q", w)
		}
	}
}

func TestNilAndEmptySet(t *testing.T) {
	var s *Set
	if s.Contains([]byte("the")) {
		t.Error("nil set must contain nothing")
	}
	if s.Len() != 0 {
		t.Error("nil set length must be 0")
	}
	var zero Set
	if zero.Contains([]byte("the")) {
		t.Error("zero set must contain nothing")
	}
}

func TestCustomSet(t *testing.T) {
	s := NewSet([]string{"foo", "bar"})
	if !s.ContainsString("foo") || !s.ContainsString("bar") {
		t.Error("custom set missing members")
	}
	if s.ContainsString("the") {
		t.Error("custom set should not include defaults")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestContainsDoesNotAllocate(t *testing.T) {
	term := []byte("the")
	allocs := testing.AllocsPerRun(100, func() {
		Default().Contains(term)
	})
	if allocs > 0 {
		t.Errorf("Contains allocated %.1f times per run, want 0", allocs)
	}
}
