// Package cpuindexer implements the paper's CPU indexer (§III.D.1):
// one thread owning an exclusive set of popular trie collections,
// building a cached B-tree per collection (btree package) and the
// corresponding postings lists. The hot paths of the frequent Zipf-head
// terms keep their root-to-leaf node paths in the processor cache,
// which is why the popular collections are routed here (§III.E).
package cpuindexer

import (
	"fmt"
	"sort"

	"fastinvert/internal/btree"
	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
)

// Stats accumulates workload counters over the indexer lifetime
// (Table V's CPU columns).
type Stats struct {
	Tokens   int64
	NewTerms int64
	Chars    int64
	Runs     int64
}

// RunStats reports one IndexRun.
type RunStats struct {
	Groups   int
	Tokens   int64
	NewTerms int64
	Chars    int64
}

// Indexer is one CPU indexer thread's state. It is confined to a
// single goroutine.
type Indexer struct {
	trees  map[int]*btree.Tree
	stores map[int]*postings.Store
	stats  Stats

	// NoCache builds dictionaries without the 4-byte string caches,
	// for the string-cache ablation.
	NoCache bool
}

// New returns an empty CPU indexer.
func New() *Indexer {
	return &Indexer{
		trees:  make(map[int]*btree.Tree),
		stores: make(map[int]*postings.Store),
	}
}

// IndexRun consumes one parsed block's groups: every term occurrence
// is inserted into its collection's B-tree and appended to the
// postings store, with document IDs rebased by docBase.
func (ix *Indexer) IndexRun(groups []*parser.Group, docBase uint32) (RunStats, error) {
	var rs RunStats
	seen := make(map[int]bool, len(groups))
	for _, g := range groups {
		if seen[g.Index] {
			return rs, fmt.Errorf("cpuindexer: duplicate collection %d in run", g.Index)
		}
		seen[g.Index] = true
		tree := ix.trees[g.Index]
		if tree == nil {
			if ix.NoCache {
				tree = btree.NewNoCache()
			} else {
				tree = btree.New()
			}
			ix.trees[g.Index] = tree
			ix.stores[g.Index] = postings.NewStore()
		}
		store := ix.stores[g.Index]
		before := tree.Terms()
		var err error
		if g.Positional {
			err = g.ForEachPos(func(doc, pos uint32, stripped []byte) error {
				slot, _ := tree.Insert(stripped)
				return store.AddPos(slot, doc+docBase, pos)
			})
		} else {
			err = g.ForEach(func(doc uint32, stripped []byte) error {
				slot, _ := tree.Insert(stripped)
				return store.Add(slot, doc+docBase)
			})
		}
		if err != nil {
			return rs, fmt.Errorf("cpuindexer: collection %d: %w", g.Index, err)
		}
		rs.Groups++
		rs.Tokens += int64(g.Tokens)
		rs.Chars += int64(g.Chars)
		rs.NewTerms += int64(tree.Terms() - before)
	}
	ix.stats.Tokens += rs.Tokens
	ix.stats.NewTerms += rs.NewTerms
	ix.stats.Chars += rs.Chars
	ix.stats.Runs++
	return rs, nil
}

// Stats returns lifetime statistics.
func (ix *Indexer) Stats() Stats { return ix.stats }

// Collections returns the sorted trie indices this indexer has seen.
func (ix *Indexer) Collections() []int {
	out := make([]int, 0, len(ix.trees))
	for idx := range ix.trees {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Store returns the postings store of a collection (nil if unseen).
func (ix *Indexer) Store(coll int) *postings.Store { return ix.stores[coll] }

// TermCount reports the number of distinct terms in a collection.
func (ix *Indexer) TermCount(coll int) int {
	t := ix.trees[coll]
	if t == nil {
		return 0
	}
	return t.Terms()
}

// ResetRunPostings clears per-run postings after a flush; the
// dictionary persists across runs.
func (ix *Indexer) ResetRunPostings() {
	for _, s := range ix.stores {
		s.ResetRun()
	}
}

// WalkDictionary walks one collection's B-tree in key order.
func (ix *Indexer) WalkDictionary(coll int, fn func(stripped []byte, slot int32) bool) {
	t := ix.trees[coll]
	if t == nil {
		return
	}
	t.Walk(fn)
}

// DictionaryMemory reports total dictionary bytes across collections.
func (ix *Indexer) DictionaryMemory() int {
	total := 0
	for _, t := range ix.trees {
		total += t.MemoryBytes()
	}
	return total
}
