// Package cpuindexer implements the paper's CPU indexer (§III.D.1):
// one thread owning an exclusive set of popular trie collections,
// building a cached B-tree per collection (btree package) and the
// corresponding postings lists. The hot paths of the frequent Zipf-head
// terms keep their root-to-leaf node paths in the processor cache,
// which is why the popular collections are routed here (§III.E).
package cpuindexer

import (
	"bytes"
	"fmt"
	"slices"
	"sort"

	"fastinvert/internal/btree"
	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
)

// Stats accumulates workload counters over the indexer lifetime
// (Table V's CPU columns).
type Stats struct {
	Tokens   int64
	NewTerms int64
	Chars    int64
	Runs     int64
}

// RunStats reports one IndexRun.
type RunStats struct {
	Groups   int
	Tokens   int64
	NewTerms int64
	Chars    int64
}

// Indexer is one CPU indexer thread's state. It is confined to a
// single goroutine.
type Indexer struct {
	trees  map[int]*btree.Tree
	stores map[int]*postings.Store
	stats  Stats

	// Batch-insert scratch, reused across groups and runs: the decoded
	// occurrence records, the boundaries of equal-term runs after
	// sorting, each run's resolved postings slot, the runs holding
	// terms not yet in the dictionary, and the radix sort's swap buffer.
	recs      []occRec
	runStarts []int32
	runSlots  []int32
	newRuns   []int32
	radixBuf  []occRec
	seen      map[int]bool

	// NoCache builds dictionaries without the 4-byte string caches,
	// for the string-cache ablation.
	NoCache bool
}

// occRec is one decoded term occurrence. The term slice aliases the
// group stream, so records are valid only while the block is.
type occRec struct {
	term   []byte
	prefix uint32 // big-endian image of the first 4 term bytes, zero-padded
	seq    int32  // occurrence index in stream order (slot tiebreak)
	doc    uint32
	pos    uint32
}

// termPrefix builds the big-endian zero-padded 4-byte prefix used as
// the primary sort key. Terms are NUL-free, so ordering by this prefix
// agrees with lexicographic order of the terms themselves — the same
// property the B-tree's 4-byte string cache (Table II) exploits: most
// comparisons resolve on one word without touching the full bytes.
func termPrefix(term []byte) uint32 {
	var p uint32
	for i := 0; i < btree.CacheBytes && i < len(term); i++ {
		p |= uint32(term[i]) << (24 - 8*i)
	}
	return p
}

// compareOcc orders records by (prefix, term, seq): equal terms become
// adjacent runs whose records stay in stream order. The prefix word
// resolves almost every comparison without touching term bytes.
func compareOcc(a, b occRec) int {
	if a.prefix != b.prefix {
		if a.prefix < b.prefix {
			return -1
		}
		return 1
	}
	if c := bytes.Compare(a.term, b.term); c != 0 {
		return c
	}
	return int(a.seq) - int(b.seq)
}

// radixMinRecs is the batch size below which the plain comparison sort
// wins: the radix passes have a fixed per-call cost (four 256-counter
// histograms) that small batches never amortize.
const radixMinRecs = 128

// sortOccs orders the occurrence records by (prefix, term, seq) — the
// exact total order compareOcc defines, so the batched insert's output
// stays bit-identical — while paying comparison cost only where the
// 4-byte prefix cannot decide. Profile background: with a warm
// dictionary the per-group comparison sort IS the indexing hot path
// (no tree inserts remain to hide it), and its per-comparison function
// calls dominate. The replacement is a stable LSD radix sort on the
// prefix word, O(4n) moves with no comparator, followed by comparison
// sorts only inside equal-prefix ranges that contain a term longer
// than the prefix: prefixes are the zero-padded first 4 bytes of
// NUL-free terms, so two terms of at most 4 bytes with equal prefixes
// are the same term — and within one term the radix sort's stability
// has already preserved seq order (records enter in seq order).
func (ix *Indexer) sortOccs(recs []occRec) {
	if len(recs) < radixMinRecs {
		slices.SortFunc(recs, compareOcc)
		return
	}
	ix.radixByPrefix(recs)
	for i := 0; i < len(recs); {
		j := i + 1
		long := len(recs[i].term) > btree.CacheBytes
		for j < len(recs) && recs[j].prefix == recs[i].prefix {
			long = long || len(recs[j].term) > btree.CacheBytes
			j++
		}
		if long && j-i > 1 {
			slices.SortFunc(recs[i:j], compareOcc)
		}
		i = j
	}
}

// radixByPrefix stable-sorts the records by their prefix word: LSD
// counting passes over 8-bit digits, ping-ponging between recs and the
// reused scratch buffer. All four histograms are built in one scan up
// front, so a digit position that is uniform across the batch (common:
// groups are prefix-partitioned, and one group's terms often share
// their leading bytes) costs nothing beyond that single scan — only
// positions that actually discriminate pay a copy pass.
func (ix *Indexer) radixByPrefix(recs []occRec) {
	n := len(recs)
	if cap(ix.radixBuf) < n {
		ix.radixBuf = make([]occRec, n)
	}
	var counts [4][256]int
	for i := range recs {
		p := recs[i].prefix
		counts[0][p&0xff]++
		counts[1][(p>>8)&0xff]++
		counts[2][(p>>16)&0xff]++
		counts[3][p>>24]++
	}
	src, dst := recs, ix.radixBuf[:n]
	swapped := false
	for pass := 0; pass < 4; pass++ {
		count := &counts[pass]
		shift := uint(8 * pass)
		if count[(src[0].prefix>>shift)&0xff] == n {
			continue
		}
		sum := 0
		for d := 0; d < 256; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := range src {
			d := (src[i].prefix >> shift) & 0xff
			dst[count[d]] = src[i]
			count[d]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(recs, src)
	}
}

// New returns an empty CPU indexer.
func New() *Indexer {
	return &Indexer{
		trees:  make(map[int]*btree.Tree),
		stores: make(map[int]*postings.Store),
	}
}

// IndexRun consumes one parsed block's groups: every term occurrence
// is inserted into its collection's B-tree and appended to the
// postings store, with document IDs rebased by docBase.
//
// Occurrences are indexed in batches: the group stream is decoded into
// records, sorted so equal terms become adjacent (cheap 4-byte prefix
// comparisons first), and each distinct term then costs one tree
// descent instead of one per occurrence — a large saving on the Zipf
// head collections routed to the CPU. Terms absent from the dictionary
// are inserted in stream order of first appearance, so postings-slot
// assignment (and with it every run file) is bit-identical to
// occurrence-at-a-time insertion.
func (ix *Indexer) IndexRun(groups []*parser.Group, docBase uint32) (RunStats, error) {
	var rs RunStats
	if ix.seen == nil {
		ix.seen = make(map[int]bool, len(groups))
	} else {
		clear(ix.seen)
	}
	for _, g := range groups {
		if ix.seen[g.Index] {
			return rs, fmt.Errorf("cpuindexer: duplicate collection %d in run", g.Index)
		}
		ix.seen[g.Index] = true
		tree := ix.trees[g.Index]
		if tree == nil {
			if ix.NoCache {
				tree = btree.NewNoCache()
			} else {
				tree = btree.New()
			}
			ix.trees[g.Index] = tree
			ix.stores[g.Index] = postings.NewStore()
		}
		store := ix.stores[g.Index]
		before := tree.Terms()
		if err := ix.indexGroup(tree, store, g, docBase); err != nil {
			return rs, fmt.Errorf("cpuindexer: collection %d: %w", g.Index, err)
		}
		rs.Groups++
		rs.Tokens += int64(g.Tokens)
		rs.Chars += int64(g.Chars)
		rs.NewTerms += int64(tree.Terms() - before)
	}
	ix.stats.Tokens += rs.Tokens
	ix.stats.NewTerms += rs.NewTerms
	ix.stats.Chars += rs.Chars
	ix.stats.Runs++
	return rs, nil
}

// indexGroup runs the batched insert for one group.
func (ix *Indexer) indexGroup(tree *btree.Tree, store *postings.Store, g *parser.Group, docBase uint32) error {
	ix.recs = ix.recs[:0]
	seq := int32(0)
	err := g.ForEachPos(func(doc, pos uint32, stripped []byte) error {
		ix.recs = append(ix.recs, occRec{
			term:   stripped,
			prefix: termPrefix(stripped),
			seq:    seq,
			doc:    doc,
			pos:    pos,
		})
		seq++
		return nil
	})
	if err != nil {
		return err
	}
	recs := ix.recs
	ix.sortOccs(recs)

	// One Lookup per distinct term; remember the runs whose term is new.
	ix.runStarts = ix.runStarts[:0]
	ix.runSlots = ix.runSlots[:0]
	ix.newRuns = ix.newRuns[:0]
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && bytes.Equal(recs[j].term, recs[i].term) {
			j++
		}
		slot := tree.Lookup(recs[i].term)
		ix.runStarts = append(ix.runStarts, int32(i))
		ix.runSlots = append(ix.runSlots, slot)
		if slot < 0 {
			ix.newRuns = append(ix.newRuns, int32(len(ix.runSlots)-1))
		}
		i = j
	}
	ix.runStarts = append(ix.runStarts, int32(len(recs)))

	// Insert new terms in first-appearance stream order: the tree
	// assigns postings slots sequentially, so this order is what keeps
	// batched output identical to per-occurrence insertion.
	newRuns := ix.newRuns
	slices.SortFunc(newRuns, func(a, b int32) int {
		return int(recs[ix.runStarts[a]].seq) - int(recs[ix.runStarts[b]].seq)
	})
	for _, r := range newRuns {
		slot, _ := tree.Insert(recs[ix.runStarts[r]].term)
		ix.runSlots[r] = slot
	}

	// Append postings per term; records within a run are already in
	// stream (= ascending document) order.
	for r := 0; r < len(ix.runSlots); r++ {
		slot := ix.runSlots[r]
		for i := ix.runStarts[r]; i < ix.runStarts[r+1]; i++ {
			rec := &recs[i]
			if g.Positional {
				err = store.AddPos(slot, rec.doc+docBase, rec.pos)
			} else {
				err = store.Add(slot, rec.doc+docBase)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats returns lifetime statistics.
func (ix *Indexer) Stats() Stats { return ix.stats }

// Collections returns the sorted trie indices this indexer has seen.
func (ix *Indexer) Collections() []int {
	out := make([]int, 0, len(ix.trees))
	for idx := range ix.trees {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Store returns the postings store of a collection (nil if unseen).
func (ix *Indexer) Store(coll int) *postings.Store { return ix.stores[coll] }

// TermCount reports the number of distinct terms in a collection.
func (ix *Indexer) TermCount(coll int) int {
	t := ix.trees[coll]
	if t == nil {
		return 0
	}
	return t.Terms()
}

// ResetRunPostings clears per-run postings after a flush; the
// dictionary persists across runs.
func (ix *Indexer) ResetRunPostings() {
	for _, s := range ix.stores {
		s.ResetRun()
	}
}

// Lookup resolves a stripped term to its postings slot within a
// collection, or -1 when the term (or collection) is unknown.
func (ix *Indexer) Lookup(coll int, stripped []byte) int32 {
	t := ix.trees[coll]
	if t == nil {
		return -1
	}
	return t.Lookup(stripped)
}

// WalkDictionary walks one collection's B-tree in key order.
func (ix *Indexer) WalkDictionary(coll int, fn func(stripped []byte, slot int32) bool) {
	t := ix.trees[coll]
	if t == nil {
		return
	}
	t.Walk(fn)
}

// DictionaryMemory reports total dictionary bytes across collections.
func (ix *Indexer) DictionaryMemory() int {
	total := 0
	for _, t := range ix.trees {
		total += t.MemoryBytes()
	}
	return total
}
