package cpuindexer

import (
	"math/rand"
	"slices"
	"testing"
)

// sortVocab mixes the cases the radix + fixup split must get right:
// empty terms (fully stripped by the trie), terms at and around the
// 4-byte prefix boundary, terms that share a full prefix but diverge
// later, and high bytes exercising the upper radix digits.
var sortVocab = []string{
	"", "a", "ab", "abc", "abcd", "abce",
	"abcde", "abcdf", "abcdee", "abcdef", "abcdefgh",
	"zzzz", "zzzza", "zzzzb", "zzzzzzzzzz",
	"ra", "on", "ger",
	"\xff\xff\xff\xff", "\xff\xff\xff\xffx", "\x01\x02\x03\x04\x05",
}

func randomOccs(rng *rand.Rand, n int, vocab []string) []occRec {
	recs := make([]occRec, n)
	for i := range recs {
		term := []byte(vocab[rng.Intn(len(vocab))])
		recs[i] = occRec{
			term:   term,
			prefix: termPrefix(term),
			seq:    int32(i), // records always enter in stream order
			doc:    uint32(i / 3),
			pos:    uint32(i),
		}
	}
	return recs
}

// TestSortOccsMatchesComparisonSort checks the radix-accelerated sort
// produces exactly the order compareOcc defines, across sizes on both
// sides of the radix threshold and vocabularies stressing each branch:
// the general mix, a single shared prefix (every radix pass uniform,
// comparison fixup does all the work), and short-only terms (no fixup
// at all — radix stability must carry seq order alone).
func TestSortOccsMatchesComparisonSort(t *testing.T) {
	short := []string{"", "a", "ab", "abc", "abcd", "zzzz", "b", "bb"}
	onePrefix := []string{"abcd", "abcde", "abcdf", "abcdee", "abcdxyz"}
	cases := []struct {
		name  string
		vocab []string
	}{
		{"mixed", sortVocab},
		{"short-only", short},
		{"one-prefix", onePrefix},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(7))
		for _, n := range []int{0, 1, 2, 127, 128, 129, 1000, 4096} {
			recs := randomOccs(rng, n, tc.vocab)
			want := slices.Clone(recs)
			slices.SortFunc(want, compareOcc)

			ix := New()
			ix.sortOccs(recs)
			for i := range want {
				if compareOcc(recs[i], want[i]) != 0 {
					t.Fatalf("%s n=%d: record %d = %+v, want %+v",
						tc.name, n, i, recs[i], want[i])
				}
			}
			// Re-sorting sorted input must be a no-op (and reuses the
			// Indexer's scratch buffer from the pass above).
			ix.sortOccs(recs)
			for i := range want {
				if compareOcc(recs[i], want[i]) != 0 {
					t.Fatalf("%s n=%d: resort moved record %d", tc.name, n, i)
				}
			}
		}
	}
}

// BenchmarkSortOccs compares the radix-accelerated sort against the
// plain comparison sort on a warm-dictionary-shaped batch (Zipf-ish
// term repetition, realistic lengths).
func BenchmarkSortOccs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vocab := make([]string, 400)
	for i := range vocab {
		// Trie-stripped suffixes: diverse leading bytes, lengths 2-9.
		n := 2 + rng.Intn(8)
		s := make([]byte, n)
		for j := range s {
			s[j] = byte('a' + rng.Intn(26))
		}
		vocab[i] = string(s)
	}
	base := randomOccs(rng, 8192, vocab)
	for _, bc := range []struct {
		name string
		sort func(ix *Indexer, recs []occRec)
	}{
		{"radix", func(ix *Indexer, recs []occRec) { ix.sortOccs(recs) }},
		{"comparison", func(_ *Indexer, recs []occRec) { slices.SortFunc(recs, compareOcc) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ix := New()
			recs := make([]occRec, len(base))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(recs, base)
				bc.sort(ix, recs)
			}
		})
	}
}
