package cpuindexer

import (
	"strings"
	"testing"

	"fastinvert/internal/parser"
)

func BenchmarkIndexRun(b *testing.B) {
	p := parser.New(nil)
	blk := parser.NewBlock(0)
	text := strings.Repeat(
		"heterogeneous platforms accelerate inverted file construction with pipelined parallel indexing ", 40)
	for d := 0; d < 16; d++ {
		p.ParseDoc(uint32(d), []byte(text), blk)
	}
	groups := make([]*parser.Group, 0, len(blk.Groups))
	var bytes int64
	for _, g := range blk.Groups {
		groups = append(groups, g)
		bytes += int64(len(g.Stream))
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New()
		if _, err := ix.IndexRun(groups, 0); err != nil {
			b.Fatal(err)
		}
	}
}
