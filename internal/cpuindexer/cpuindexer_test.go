package cpuindexer

import (
	"testing"

	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
	"fastinvert/internal/trie"
)

func parseBlocks(t *testing.T, texts ...string) []*parser.Block {
	t.Helper()
	p := parser.New(nil)
	var blocks []*parser.Block
	for bi, text := range texts {
		blk := parser.NewBlock(bi)
		p.ParseDoc(uint32(0), []byte(text), blk)
		if err := blk.Validate(); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, blk)
	}
	return blocks
}

func groupsOf(blk *parser.Block) []*parser.Group {
	out := make([]*parser.Group, 0, len(blk.Groups))
	for _, g := range blk.Groups {
		out = append(out, g)
	}
	return out
}

func TestIndexRunBuildsPostings(t *testing.T) {
	blocks := parseBlocks(t, "zebra zebra lion", "zebra tiger")
	ix := New()
	rs, err := ix.IndexRun(groupsOf(blocks[0]), 100)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Tokens != 3 || rs.NewTerms != 2 {
		t.Errorf("run1 stats = %+v", rs)
	}
	rs2, err := ix.IndexRun(groupsOf(blocks[1]), 200)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.NewTerms != 1 { // zebra already known; tiger new
		t.Errorf("run2 NewTerms = %d, want 1", rs2.NewTerms)
	}

	collZebra := trie.IndexString("zebra")
	store := ix.Store(collZebra)
	if store == nil {
		t.Fatal("zebra store missing")
	}
	var zebraList *postings.List
	ix.WalkDictionary(collZebra, func(stripped []byte, slot int32) bool {
		if string(stripped) == "ra" { // "zebra" minus "zeb"
			zebraList = store.List(slot)
		}
		return true
	})
	if zebraList == nil {
		t.Fatal("zebra term missing from dictionary")
	}
	if zebraList.Len() != 2 || zebraList.DocIDs[0] != 100 || zebraList.DocIDs[1] != 200 {
		t.Fatalf("zebra postings = %v", zebraList.DocIDs)
	}
	if zebraList.TFs[0] != 2 || zebraList.TFs[1] != 1 {
		t.Fatalf("zebra tfs = %v", zebraList.TFs)
	}
}

func TestDuplicateCollectionRejected(t *testing.T) {
	blocks := parseBlocks(t, "zebra")
	gs := groupsOf(blocks[0])
	gs = append(gs, gs[0])
	if _, err := New().IndexRun(gs, 0); err == nil {
		t.Error("duplicate collection in run must error")
	}
}

func TestResetRunPostingsKeepsDictionary(t *testing.T) {
	blocks := parseBlocks(t, "zebra zebra")
	ix := New()
	ix.IndexRun(groupsOf(blocks[0]), 0)
	coll := trie.IndexString("zebra")
	if ix.TermCount(coll) != 1 {
		t.Fatalf("TermCount = %d", ix.TermCount(coll))
	}
	ix.ResetRunPostings()
	if ix.TermCount(coll) != 1 {
		t.Error("dictionary lost on postings reset")
	}
	if ix.Store(coll).Postings() != 0 {
		t.Error("postings survive reset")
	}
	// Re-indexing the same term in a later run reuses its slot.
	blocks2 := parseBlocks(t, "zebra")
	rs, err := ix.IndexRun(groupsOf(blocks2[0]), 50)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NewTerms != 0 {
		t.Errorf("NewTerms = %d, want 0", rs.NewTerms)
	}
}

func TestCollectionsSortedAndMemory(t *testing.T) {
	blocks := parseBlocks(t, "zebra apple 42 -x")
	ix := New()
	if _, err := ix.IndexRun(groupsOf(blocks[0]), 0); err != nil {
		t.Fatal(err)
	}
	colls := ix.Collections()
	for i := 1; i < len(colls); i++ {
		if colls[i] <= colls[i-1] {
			t.Error("Collections not sorted")
		}
	}
	if ix.DictionaryMemory() <= 0 {
		t.Error("DictionaryMemory must be positive")
	}
}
