package segment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"fastinvert/internal/store"
)

// Manifest layout (manifest.json, version 1): the authoritative record
// of which immutable segments make up the index. Every seal and every
// compaction writes a new manifest atomically AFTER the segment files
// it names are durable, so a crash at any point leaves a manifest
// whose files all exist; orphaned segment files from an interrupted
// seal are unreferenced and harmless.
const (
	manifestFileName = "manifest.json"
	manifestVersion  = 1
)

// SegmentMeta describes one immutable on-disk segment.
type SegmentMeta struct {
	ID       uint64 `json:"id"`
	File     string `json:"file"` // run-format postings file (base name)
	Dict     string `json:"dict"` // sorted dictionary file (base name)
	FirstDoc uint32 `json:"first_doc"`
	LastDoc  uint32 `json:"last_doc"`
	Docs     uint32 `json:"docs"`  // docIDs owned: LastDoc-FirstDoc+1
	Lists    int    `json:"lists"` // postings lists in the run file
	Bytes    int64  `json:"bytes"` // run file size
}

// Manifest is the on-disk index state: the sealed-document frontier,
// the next segment ID, and the live segments in ascending doc order.
type Manifest struct {
	Version  int           `json:"version"`
	NextDoc  uint32        `json:"next_doc"` // docs [0, NextDoc) are sealed
	NextSeg  uint64        `json:"next_seg"`
	Purged   uint32        `json:"purged"` // docs physically removed by compactions
	Segments []SegmentMeta `json:"segments"`
}

// parseManifest validates and decodes a manifest. Structural damage —
// out-of-order or overlapping segments, path traversal in file names,
// counts that contradict each other — yields an error wrapping
// store.ErrCorruptIndex, never a panic.
func parseManifest(raw []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("manifest (%v): %w", err, store.ErrCorruptIndex)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("manifest: unsupported version %d: %w",
			m.Version, store.ErrCorruptIndex)
	}
	if m.Purged > m.NextDoc {
		return nil, fmt.Errorf("manifest: %d purged of %d sealed docs: %w",
			m.Purged, m.NextDoc, store.ErrCorruptIndex)
	}
	prevLast := int64(-1)
	for i := range m.Segments {
		s := &m.Segments[i]
		if s.File == "" || s.File != filepath.Base(s.File) ||
			s.Dict == "" || s.Dict != filepath.Base(s.Dict) {
			return nil, fmt.Errorf("manifest: segment %d names non-local file %q/%q: %w",
				s.ID, s.File, s.Dict, store.ErrCorruptIndex)
		}
		if s.ID >= m.NextSeg {
			return nil, fmt.Errorf("manifest: segment ID %d >= next_seg %d: %w",
				s.ID, m.NextSeg, store.ErrCorruptIndex)
		}
		if s.FirstDoc > s.LastDoc {
			return nil, fmt.Errorf("manifest: segment %d doc range [%d,%d] inverted: %w",
				s.ID, s.FirstDoc, s.LastDoc, store.ErrCorruptIndex)
		}
		if int64(s.FirstDoc) <= prevLast {
			return nil, fmt.Errorf("manifest: segment %d overlaps or disorders doc ranges: %w",
				s.ID, store.ErrCorruptIndex)
		}
		prevLast = int64(s.LastDoc)
		if s.LastDoc >= m.NextDoc {
			return nil, fmt.Errorf("manifest: segment %d reaches doc %d past frontier %d: %w",
				s.ID, s.LastDoc, m.NextDoc, store.ErrCorruptIndex)
		}
		if want := s.LastDoc - s.FirstDoc + 1; s.Docs != want {
			return nil, fmt.Errorf("manifest: segment %d says %d docs over range [%d,%d]: %w",
				s.ID, s.Docs, s.FirstDoc, s.LastDoc, store.ErrCorruptIndex)
		}
		if s.Lists < 0 || s.Bytes < 0 {
			return nil, fmt.Errorf("manifest: segment %d has negative counts: %w",
				s.ID, store.ErrCorruptIndex)
		}
	}
	return &m, nil
}

// loadManifest reads dir's manifest; a missing file is a fresh empty
// index.
func loadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFileName))
	if os.IsNotExist(err) {
		return &Manifest{Version: manifestVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	return parseManifest(raw)
}

// save atomically persists the manifest.
func (m *Manifest) save(dir string) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, manifestFileName), data)
}
