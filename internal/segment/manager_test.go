package segment

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fastinvert/internal/store"
)

// docText builds a document from the given terms (already normalized:
// lowercase, non-stop, stem-stable words).
func docText(terms ...string) []byte { return []byte(strings.Join(terms, " ")) }

// readBackLive drains every non-empty live postings list into a map.
func readBackLive(t *testing.T, m *Manager) map[string][]uint32 {
	t.Helper()
	out := make(map[string][]uint32)
	for _, e := range m.Dictionary() {
		l, err := m.Postings(e.Term)
		if err != nil {
			t.Fatalf("Postings(%q): %v", e.Term, err)
		}
		if l.Len() == 0 {
			continue
		}
		out[e.Term] = append([]uint32(nil), l.DocIDs...)
	}
	return out
}

func TestMemtableSealReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	docs := [][]byte{
		docText("alpha", "beta"),
		docText("beta", "gamma", "beta"),
		docText("alpha", "delta"),
	}
	for i, d := range docs {
		id, err := m.AddDocument(d)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint32(i) {
			t.Fatalf("doc %d got id %d", i, id)
		}
	}
	want := map[string][]uint32{
		"alpha": {0, 2},
		"beta":  {0, 1},
		"gamma": {1},
		"delta": {2},
	}
	if got := readBackLive(t, m); !reflect.DeepEqual(got, want) {
		t.Fatalf("memtable readback = %v, want %v", got, want)
	}
	// TF of the repeated term must reflect both occurrences.
	l, err := m.Postings("beta")
	if err != nil {
		t.Fatal(err)
	}
	if l.TFs[1] != 2 {
		t.Fatalf("beta TF in doc 1 = %d, want 2", l.TFs[1])
	}
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := readBackLive(t, m); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-seal readback = %v, want %v", got, want)
	}
	if st := m.Stats(); st.Segments != 1 || st.MemtableDocs != 0 || st.Seals != 1 {
		t.Fatalf("stats after seal = %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := readBackLive(t, m2); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened readback = %v, want %v", got, want)
	}
	if n := m2.NumDocs(); n != 3 {
		t.Fatalf("NumDocs after reopen = %d", n)
	}
	// New docs continue the ID sequence.
	id, err := m2.AddDocument(docText("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Fatalf("next doc id = %d, want 3", id)
	}
}

func TestDeleteFiltersAndPersists(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.AddDocument(docText("alpha")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	// One sealed delete (persists immediately), one memtable delete.
	if _, err := m.AddDocument(docText("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(4); err != nil {
		t.Fatal(err)
	}
	l, err := m.Postings("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint32{0, 2, 3}; !reflect.DeepEqual(l.DocIDs, want) {
		t.Fatalf("live alpha docs = %v, want %v", l.DocIDs, want)
	}
	if !m.IsDeleted(1) || !m.IsDeleted(4) || m.IsDeleted(0) {
		t.Fatal("IsDeleted disagrees with deletions")
	}
	if live := m.LiveDocs(); live != 3 {
		t.Fatalf("LiveDocs = %d, want 3", live)
	}
	if err := m.Delete(99); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("Delete(99) = %v, want ErrUnknownDoc", err)
	}
	// Deleting twice is a no-op.
	if err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Both deletions survive reopen: doc 4 was sealed by Close.
	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	l, err = m2.Postings("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint32{0, 2, 3}; !reflect.DeepEqual(l.DocIDs, want) {
		t.Fatalf("reopened alpha docs = %v, want %v", l.DocIDs, want)
	}
}

func TestCompactionMergesSegmentsAndPurgesTombstones(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Three segments; "gamma" lives only in doc 2, which dies below.
	batches := [][][]byte{
		{docText("alpha", "beta"), docText("alpha")},
		{docText("gamma"), docText("beta", "delta")},
		{docText("alpha", "delta")},
	}
	for _, batch := range batches {
		for _, d := range batch {
			if _, err := m.AddDocument(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Delete(2); err != nil {
		t.Fatal(err)
	}
	want := map[string][]uint32{
		"alpha": {0, 1, 4},
		"beta":  {0, 3},
		"delta": {3, 4},
	}
	if got := readBackLive(t, m); !reflect.DeepEqual(got, want) {
		t.Fatalf("pre-compaction readback = %v, want %v", got, want)
	}
	genBefore := m.Gen()
	if err := m.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.Gen() == genBefore {
		t.Fatal("compaction did not advance the generation")
	}
	st := m.Stats()
	if st.Segments != 1 || st.Compactions != 1 {
		t.Fatalf("stats after compaction = %+v", st)
	}
	if st.Deleted != 0 {
		t.Fatalf("purged tombstones still counted: %+v", st)
	}
	if got := readBackLive(t, m); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction readback = %v, want %v", got, want)
	}
	// The fully-purged term is gone from the dictionary, not just empty.
	for _, e := range m.Dictionary() {
		if e.Term == "gamma" {
			t.Fatal("fully purged term still in dictionary")
		}
	}
	// Old segment files are unlinked; exactly one .post remains.
	posts, _ := filepath.Glob(filepath.Join(dir, "seg-*.post"))
	if len(posts) != 1 {
		t.Fatalf("segment files after compaction: %v", posts)
	}
	// The tombstoned doc stays deleted (its ID is never reused).
	if l, _ := m.Postings("gamma"); l.Len() != 0 {
		t.Fatal("purged postings resurfaced")
	}
	if m.NumDocs() != 5 {
		t.Fatalf("NumDocs = %d, want 5", m.NumDocs())
	}
}

func TestAutoSealAndBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{SealEvery: 2, CompactAt: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 12; i++ {
		if _, err := m.AddDocument(docText("alpha", fmt.Sprintf("w%dx", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Let any background compaction land before checking.
	m.bg.Wait()
	if err := m.LastCompactionError(); err != nil {
		t.Fatalf("background compaction failed: %v", err)
	}
	st := m.Stats()
	if st.Seals != 6 {
		t.Fatalf("auto-seals = %d, want 6", st.Seals)
	}
	if st.Compactions == 0 {
		t.Fatal("no background compaction ran")
	}
	l, err := m.Postings("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 12 {
		t.Fatalf("alpha postings = %d docs, want 12", l.Len())
	}
}

func TestCompactEverythingPurged(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 3; i++ {
		if _, err := m.AddDocument(docText("alpha")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	for d := uint32(0); d < 3; d++ {
		if err := m.Delete(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := readBackLive(t, m); len(got) != 0 {
		t.Fatalf("readback after total purge = %v", got)
	}
	if len(m.Dictionary()) != 0 {
		t.Fatal("dictionary survives total purge")
	}
	if m.LiveDocs() != 0 || m.NumDocs() != 3 {
		t.Fatalf("LiveDocs=%d NumDocs=%d", m.LiveDocs(), m.NumDocs())
	}
	// The doc space stays consumed after reopen.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if id, err := m2.AddDocument(docText("beta")); err != nil || id != 3 {
		t.Fatalf("AddDocument after purge = (%d, %v), want (3, nil)", id, err)
	}
}

func TestPositionalLivePostings(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Positional: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.AddDocument(docText("alpha", "beta", "alpha")); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		l, err := m.Postings("alpha")
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if !l.Positional() || len(l.Positions) != 1 ||
			!reflect.DeepEqual(l.Positions[0], []uint32{0, 2}) {
			t.Fatalf("%s: alpha positions = %v", stage, l.Positions)
		}
	}
	check("memtable")
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	check("sealed")
	if err := m.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	check("compacted")
}

func TestClosedManagerErrors(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddDocument(docText("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddDocument(docText("beta")); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("AddDocument after Close = %v", err)
	}
	if err := m.Delete(0); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("Delete after Close = %v", err)
	}
	if _, err := m.Postings("alpha"); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("Postings after Close = %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestOpenRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestFileName), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, store.ErrCorruptIndex) {
		t.Fatalf("Open on corrupt manifest = %v, want ErrCorruptIndex", err)
	}
}

func TestOpenRejectsOversizedTombstones(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddDocument(docText("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Tombstones claiming more docs than the manifest sealed would
	// delete future documents; Open must refuse.
	b := (&bitmap{}).grown(10)
	if err := saveTombstones(dir, b, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, store.ErrCorruptIndex) {
		t.Fatalf("Open = %v, want ErrCorruptIndex", err)
	}
}

func TestEmptyDocumentConsumesDocID(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if id, err := m.AddDocument(nil); err != nil || id != 0 {
		t.Fatalf("empty doc = (%d, %v)", id, err)
	}
	if id, err := m.AddDocument(docText("alpha")); err != nil || id != 1 {
		t.Fatalf("second doc = (%d, %v)", id, err)
	}
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	l, err := m.Postings("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.DocIDs, []uint32{1}) {
		t.Fatalf("alpha docs = %v, want [1]", l.DocIDs)
	}
}
