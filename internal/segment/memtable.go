package segment

import (
	"sort"
	"sync"

	"fastinvert/internal/cpuindexer"
	"fastinvert/internal/encoding"
	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
	"fastinvert/internal/store"
	"fastinvert/internal/trie"
)

// memtable is the in-memory write segment: one cpuindexer (trie-routed
// B-tree dictionaries plus postings stores) fed one document per
// IndexRun, with global docIDs passed straight through as the run's
// doc base. A RWMutex covers it — adds are serialized by the manager's
// write lock anyway, and queries deep-copy lists under the read lock
// because postings.Store mutates list tails in place (a repeated term
// bumps the tail TF).
type memtable struct {
	mu       sync.RWMutex
	ix       *cpuindexer.Indexer
	p        *parser.Parser
	blk      *parser.Block
	groups   []*parser.Group // scratch, reused across adds
	gidx     []int           // scratch, sorted group indices
	firstDoc uint32
	docs     uint32
	tokens   int64
}

func newMemtable(firstDoc uint32, positional bool) *memtable {
	p := parser.New(nil)
	p.Positional = positional
	return &memtable{
		ix:       cpuindexer.New(),
		p:        p,
		blk:      parser.NewBlock(0),
		firstDoc: firstDoc,
	}
}

// add parses one document and indexes it under the given global docID.
// Documents arrive in ascending docID order (the manager assigns IDs
// under its write lock), so postings stay sorted by construction.
func (m *memtable) add(doc uint32, text []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blk.Reset()
	m.p.ParseDoc(0, text, m.blk)
	// Feed groups in sorted collection order for deterministic slot
	// assignment when terms tie across collections of one document.
	m.gidx = m.gidx[:0]
	for idx := range m.blk.Groups {
		m.gidx = append(m.gidx, idx)
	}
	sort.Ints(m.gidx)
	m.groups = m.groups[:0]
	for _, idx := range m.gidx {
		m.groups = append(m.groups, m.blk.Groups[idx])
	}
	if _, err := m.ix.IndexRun(m.groups, doc); err != nil {
		return err
	}
	m.docs++
	m.tokens += int64(m.blk.Tokens)
	return nil
}

func (m *memtable) numDocs() uint32 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.docs
}

func (m *memtable) numTokens() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.tokens
}

// postings returns a deep copy of the term's in-memory list, or nil
// when the memtable has never seen the term.
func (m *memtable) postings(term string) *postings.List {
	tb := []byte(term)
	coll := trie.Index(tb)
	stripped := trie.Strip(coll, tb)
	m.mu.RLock()
	defer m.mu.RUnlock()
	slot := m.ix.Lookup(coll, stripped)
	if slot < 0 {
		return nil
	}
	st := m.ix.Store(coll)
	if st == nil || int(slot) >= st.NumSlots() {
		return nil
	}
	return copyList(st.List(slot))
}

// copyList deep-copies a postings list, including the per-posting
// position slices: the store appends to the tail position slice in
// place, so aliasing any part of it would race with a concurrent add.
func copyList(l *postings.List) *postings.List {
	if l == nil || l.Len() == 0 {
		return nil
	}
	out := &postings.List{
		DocIDs: append([]uint32(nil), l.DocIDs...),
		TFs:    append([]uint32(nil), l.TFs...),
	}
	if l.Positional() {
		out.Positions = make([][]uint32, len(l.Positions))
		for i, ps := range l.Positions {
			out.Positions[i] = append([]uint32(nil), ps...)
		}
	}
	return out
}

// dictionary appends the memtable's terms (restored to full form) to
// dst as dictionary entries and returns the extended slice. Entries
// are appended in (collection, term) order.
func (m *memtable) dictionary(dst []store.DictEntry) []store.DictEntry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var scratch []byte
	for _, coll := range m.ix.Collections() {
		m.ix.WalkDictionary(coll, func(stripped []byte, slot int32) bool {
			scratch = trie.RestoreAppend(coll, scratch[:0], stripped)
			dst = append(dst, store.DictEntry{
				Term:       string(scratch),
				Collection: int32(coll),
				Slot:       slot,
			})
			return true
		})
	}
	return dst
}

// terms reports the number of distinct terms across collections.
func (m *memtable) terms() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, coll := range m.ix.Collections() {
		n += m.ix.TermCount(coll)
	}
	return n
}

// seal encodes the memtable into run-file bytes plus the matching
// sorted dictionary. Callers must have writes blocked (the manager's
// write lock); concurrent readers are unaffected — seal only reads.
// With blocks set, long lists get the blocked skip-table layout so the
// ranked path can evaluate sealed segments block-at-a-time.
func (m *memtable) seal(sel encoding.Selector, lastDoc uint32, blocks bool) (data []byte, dict []store.DictEntry, lists int, err error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b := store.NewRunBuilderCodec(sel)
	if blocks {
		b.EnableBlocks()
	}
	for _, coll := range m.ix.Collections() {
		st := m.ix.Store(coll)
		for slot := 0; slot < st.NumSlots(); slot++ {
			l := st.List(int32(slot))
			if l == nil || l.Len() == 0 {
				continue
			}
			if l.Positional() {
				err = b.AddPositionalList(coll, int32(slot), l.DocIDs, l.TFs, l.Positions)
			} else {
				err = b.AddList(coll, int32(slot), l.DocIDs, l.TFs)
			}
			if err != nil {
				return nil, nil, 0, err
			}
		}
	}
	var scratch []byte
	for _, coll := range m.ix.Collections() {
		m.ix.WalkDictionary(coll, func(stripped []byte, slot int32) bool {
			scratch = trie.RestoreAppend(coll, scratch[:0], stripped)
			dict = append(dict, store.DictEntry{
				Term:       string(scratch),
				Collection: int32(coll),
				Slot:       slot,
			})
			return true
		})
	}
	store.SortDictEntries(dict)
	return b.Finalize(m.firstDoc, lastDoc), dict, b.Lists(), nil
}
