package segment

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"fastinvert/internal/encoding"
	"fastinvert/internal/postings"
	"fastinvert/internal/store"
	"fastinvert/internal/telemetry"
	"fastinvert/internal/trie"
)

// TraceSink receives finished background-operation traces (seal,
// compaction) so the serving layer can retain them next to request
// traces and correlate query latency with concurrent maintenance.
type TraceSink func(*telemetry.RequestTrace)

// ErrUnknownDoc reports a Delete of a docID that was never assigned.
var ErrUnknownDoc = errors.New("segment: unknown document")

// Options configures a Manager.
type Options struct {
	// Codec names the postings codec for sealed and compacted
	// segments: "auto" (default), "varbyte", "gamma", "golomb",
	// "bitpack" or "eliasfano".
	Codec string

	// Positional records token positions, enabling phrase queries.
	// Must be consistent across every open of the same directory:
	// positional and non-positional lists cannot concatenate.
	Positional bool

	// SealEvery seals the memtable automatically once it holds this
	// many documents; 0 means manual sealing only.
	SealEvery int

	// CompactAt starts a background compaction when a seal leaves at
	// least this many segments on disk; 0 means manual compaction.
	CompactAt int

	// CompactWorkers bounds the sharded parallel merge; 0 means
	// GOMAXPROCS.
	CompactWorkers int
}

// Stats is a point-in-time snapshot of a Manager.
type Stats struct {
	Docs           uint32 // docIDs assigned so far
	Deleted        uint32 // currently tombstoned documents
	Purged         uint32 // docs physically removed by compactions
	Segments       int    // sealed segments on disk
	SegmentBytes   int64  // their total run-file bytes
	SegmentLists   int    // their total postings lists
	MemtableDocs   uint32
	MemtableTerms  int
	MemtableTokens int64
	Seals          uint64
	Compactions    uint64
	Generation     uint64
}

// Manager is a live, incrementally updatable index over one directory.
//
// Concurrency: AddDocument, Delete, Seal and the compaction commit are
// serialized by a write lock. Queries run lock-free against immutable
// generation-stamped views — a query acquires the current view,
// finishes against it however long it takes, and a concurrent seal or
// compaction simply swaps in the next view for later queries.
//
// Durability: sealed segments, the manifest and sealed-doc tombstones
// are written atomically and fsynced. The memtable has no write-ahead
// log — documents added since the last seal (and deletions recorded
// against them) are lost on crash, by design (§DESIGN 14).
type Manager struct {
	dir  string
	opts Options
	sel  encoding.Selector

	// writeMu serializes all mutation: document adds and deletes,
	// seals, and the (brief) commit phase of a compaction.
	writeMu sync.Mutex

	// mu guards the current view, manifest and memtable pointers; held
	// only for pointer swaps, never across I/O.
	mu  sync.RWMutex
	cur *view
	man *Manifest
	mem *memtable

	nextDoc atomic.Uint32
	purged  atomic.Uint32 // docs physically removed by past compactions
	tomb    atomic.Pointer[bitmap]
	gen     atomic.Uint64

	compactMu      sync.Mutex  // one compaction at a time
	compactPending atomic.Bool // a background compaction is queued or running

	ctx    context.Context
	cancel context.CancelFunc
	bg     sync.WaitGroup
	closed atomic.Bool

	seals       atomic.Uint64
	compactions atomic.Uint64

	// codecDecodes counts sealed-segment list decodes per codec, the
	// live-mode counterpart of store.ReaderStats.CodecDecodes.
	codecDecodes [encoding.NumCodecs]atomic.Uint64

	traceSink atomic.Pointer[TraceSink]

	errMu          sync.Mutex
	lastCompactErr error
}

// Open loads (or creates) a live index directory.
func Open(dir string, opts Options) (*Manager, error) {
	codec := opts.Codec
	if codec == "" {
		codec = "auto"
	}
	sel, err := encoding.SelectorFor(codec)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man, err := loadManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	tomb, err := loadTombstones(dir)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	if tomb.numDocs > man.NextDoc {
		return nil, fmt.Errorf("segment: tombstones cover %d docs but only %d are sealed: %w",
			tomb.numDocs, man.NextDoc, store.ErrCorruptIndex)
	}
	// A tombstone file older than the manifest (crash between the two
	// writes) keeps its bits; deletions recorded in the lost window are
	// gone, like the unsealed documents they may have referenced.
	tomb = tomb.grown(man.NextDoc)

	segs := make([]*segment, 0, len(man.Segments))
	for _, sm := range man.Segments {
		s, err := openSegment(dir, sm)
		if err != nil {
			for _, prev := range segs {
				prev.run.Close()
			}
			return nil, fmt.Errorf("segment: %w", err)
		}
		segs = append(segs, s)
	}
	mem := newMemtable(man.NextDoc, opts.Positional)
	m := &Manager{dir: dir, opts: opts, sel: sel, man: man, mem: mem}
	for _, s := range segs {
		s.decodes = &m.codecDecodes
	}
	m.opts.Codec = codec
	m.nextDoc.Store(man.NextDoc)
	m.purged.Store(man.Purged)
	m.tomb.Store(tomb)
	m.cur = newView(segs, mem, 0)
	m.ctx, m.cancel = context.WithCancel(context.Background())
	return m, nil
}

// Gen returns the current index generation. It advances on every
// visible mutation (add, delete, seal, compaction), which makes it a
// safe cache-key component: postings cached under one generation can
// never serve a later state.
func (m *Manager) Gen() uint64 { return m.gen.Load() }

// SetTraceSink installs (or clears, with nil) the receiver for
// background-operation traces. Until a sink is set, seal and
// compaction tracing is off entirely — the operations run with inert
// span handles.
func (m *Manager) SetTraceSink(fn TraceSink) {
	if fn == nil {
		m.traceSink.Store(nil)
		return
	}
	m.traceSink.Store(&fn)
}

// opTrace starts a background-operation trace when a sink is
// installed, nil otherwise (every span call on nil is a no-op).
func (m *Manager) opTrace(op string) *telemetry.RequestTrace {
	if m.traceSink.Load() == nil {
		return nil
	}
	return telemetry.NewRequestTrace(op)
}

// finishOp seals an operation trace and hands it to the sink.
func (m *Manager) finishOp(tr *telemetry.RequestTrace, err error) {
	if tr == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	tr.SetGeneration(m.gen.Load())
	tr.Finish(0, msg)
	if fn := m.traceSink.Load(); fn != nil {
		(*fn)(tr)
	}
}

// CodecDecodes reports sealed-segment list decodes per codec name,
// mirroring store.ReaderStats.CodecDecodes for the live path.
func (m *Manager) CodecDecodes() map[string]uint64 {
	out := make(map[string]uint64, len(encoding.Codecs()))
	for _, c := range encoding.Codecs() {
		out[c.Name()] = m.codecDecodes[c.ID()].Load()
	}
	return out
}

// NumDocs reports the number of docIDs assigned (including deleted).
func (m *Manager) NumDocs() uint32 { return m.nextDoc.Load() }

// LiveDocs reports the number of non-deleted documents: assigned IDs
// minus current tombstones minus docs already purged by compactions.
func (m *Manager) LiveDocs() int64 {
	n := int64(m.nextDoc.Load()) - int64(m.purged.Load())
	if d := m.tomb.Load(); d != nil {
		n -= int64(d.deleted)
	}
	return n
}

// IsDeleted reports whether doc carries a tombstone.
func (m *Manager) IsDeleted(doc uint32) bool { return m.tomb.Load().has(doc) }

// AddDocument assigns the next docID, parses and indexes text into the
// memtable, and (when Options.SealEvery is hit) seals. The docID is
// consumed even when text indexes to nothing — every document occupies
// its slot, exactly like the batch pipeline.
func (m *Manager) AddDocument(text []byte) (uint32, error) {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if m.closed.Load() {
		return 0, store.ErrClosed
	}
	doc := m.nextDoc.Load()
	if doc == ^uint32(0) {
		return 0, errors.New("segment: document ID space exhausted")
	}
	if err := m.mem.add(doc, text); err != nil {
		return 0, fmt.Errorf("segment: doc %d: %w", doc, err)
	}
	m.nextDoc.Store(doc + 1)
	m.gen.Add(1)
	if m.opts.SealEvery > 0 && int(m.mem.numDocs()) >= m.opts.SealEvery {
		if err := m.sealLocked(); err != nil {
			return doc, fmt.Errorf("segment: auto-seal: %w", err)
		}
	}
	return doc, nil
}

// Delete tombstones a document. Deleting sealed documents persists
// immediately; deleting a memtable document is recorded in memory only
// (it becomes durable at the next seal, alongside the document).
// Deleting an already-deleted document is a no-op.
func (m *Manager) Delete(doc uint32) error {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if m.closed.Load() {
		return store.ErrClosed
	}
	next := m.nextDoc.Load()
	if doc >= next {
		return fmt.Errorf("%w: doc %d (next is %d)", ErrUnknownDoc, doc, next)
	}
	old := m.tomb.Load()
	if old.has(doc) {
		return nil
	}
	nb := old.withDoc(doc, next)
	m.mu.RLock()
	sealed := m.man.NextDoc
	m.mu.RUnlock()
	if doc < sealed {
		if err := saveTombstones(m.dir, nb, sealed); err != nil {
			return fmt.Errorf("segment: persisting tombstone: %w", err)
		}
	}
	m.tomb.Store(nb)
	m.gen.Add(1)
	return nil
}

// acquire retains the current view for one query.
func (m *Manager) acquire() (*view, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.cur == nil {
		return nil, store.ErrClosed
	}
	m.cur.retain()
	return m.cur, nil
}

// Postings assembles the term's live postings across sealed segments
// and the memtable, dropping tombstoned documents. Unknown terms yield
// an empty list.
func (m *Manager) Postings(term string) (*postings.List, error) {
	l, _, err := m.PostingsSized(term)
	return l, err
}

// PostingsSized additionally reports the term's encoded size in bytes:
// exact for sealed segments (on-disk list lengths), estimated for the
// memtable portion. Cache layers use it to charge budgets by what the
// postings cost at rest rather than their decoded footprint.
func (m *Manager) PostingsSized(term string) (*postings.List, int64, error) {
	return m.PostingsSizedCtx(context.Background(), term)
}

// PostingsSizedCtx is PostingsSized under a context. A
// telemetry.RequestTrace carried by ctx sees the live read anatomy:
// one merge span over the sealed-segment fan-out (with per-segment
// dict/pread/decode children) and one memtable span for the in-memory
// tail, plus the view generation the query ran against.
func (m *Manager) PostingsSizedCtx(ctx context.Context, term string) (*postings.List, int64, error) {
	v, err := m.acquire()
	if err != nil {
		return nil, 0, err
	}
	defer v.release()
	tr := telemetry.TraceFrom(ctx)
	tr.SetGeneration(v.gen)
	dead := m.tomb.Load()
	coll := int32(trie.IndexString(term))
	out := &postings.List{}
	var enc int64
	msp := tr.StartSpan(telemetry.ReqStageMerge)
	msp.AddItems(int64(len(v.segs)))
	for _, s := range v.segs {
		part, n, err := s.postingsCtx(ctx, coll, term)
		if err != nil {
			msp.End()
			return nil, 0, err
		}
		if part == nil {
			continue
		}
		enc += n
		if err := appendLive(out, part, dead); err != nil {
			msp.End()
			return nil, 0, err
		}
	}
	msp.End()
	memsp := tr.StartSpan(telemetry.ReqStageMemtable)
	if part := v.mem.postings(term); part != nil {
		enc += memEncodedEstimate(part)
		if err := appendLive(out, part, dead); err != nil {
			memsp.End()
			return nil, 0, err
		}
	}
	memsp.End()
	return out, enc, nil
}

// BlockPostingsCtx returns the term's block-at-a-time view across the
// sealed segments and the memtable, in ascending disjoint docID-range
// order: stored skip tables for blocked sealed lists, exact
// pseudo-blocks for short lists and the memtable tail.
//
// It returns (nil, nil) — block evaluation unavailable, caller falls
// back to exhaustive scoring — whenever any tombstone is live:
// tombstones hide postings from Postings but not from block counts, so
// document frequencies (hence evaluator score bounds) would disagree
// with the exhaustive path. A non-nil empty TermBlocks means the term
// does not occur anywhere.
func (m *Manager) BlockPostingsCtx(ctx context.Context, term string) (*store.TermBlocks, error) {
	if d := m.tomb.Load(); d != nil && d.deleted > 0 {
		return nil, nil
	}
	v, err := m.acquire()
	if err != nil {
		return nil, err
	}
	defer v.release()
	tr := telemetry.TraceFrom(ctx)
	tr.SetGeneration(v.gen)
	coll := int32(trie.IndexString(term))
	tb := &store.TermBlocks{}
	msp := tr.StartSpan(telemetry.ReqStageMerge)
	msp.AddItems(int64(len(v.segs)))
	for _, s := range v.segs {
		bl, err := s.blocksCtx(ctx, coll, term)
		if err != nil {
			msp.End()
			return nil, err
		}
		if bl != nil {
			tb.Lists = append(tb.Lists, bl)
		}
	}
	msp.End()
	memsp := tr.StartSpan(telemetry.ReqStageMemtable)
	// memtable.postings already deep-copies, so the pseudo-block cannot
	// alias a list tail a concurrent add is mutating.
	if part := v.mem.postings(term); part != nil {
		if bl := store.BlockListFromList(part); bl != nil {
			tb.Lists = append(tb.Lists, bl)
		}
	}
	memsp.End()
	return tb, nil
}

// appendLive concatenates part onto dst, skipping tombstoned docs and
// enforcing the same ordering invariants as postings.Concat: doc
// ranges must not interleave across segments, or the index is corrupt.
func appendLive(dst, part *postings.List, dead *bitmap) error {
	if part.Len() == 0 {
		return nil
	}
	if dst.Len() > 0 && dst.Positional() != part.Positional() {
		return fmt.Errorf("segment: positional and plain lists for one term: %w",
			store.ErrCorruptIndex)
	}
	prev := int64(-1)
	if n := dst.Len(); n > 0 {
		prev = int64(dst.DocIDs[n-1])
	}
	for i, doc := range part.DocIDs {
		if int64(doc) <= prev {
			return fmt.Errorf("segment: postings disorder at doc %d: %w",
				doc, store.ErrCorruptIndex)
		}
		prev = int64(doc)
		if dead.has(doc) {
			continue
		}
		dst.DocIDs = append(dst.DocIDs, doc)
		dst.TFs = append(dst.TFs, part.TFs[i])
		if part.Positional() {
			dst.Positions = append(dst.Positions, part.Positions[i])
		}
	}
	return nil
}

// memEncodedEstimate prices a memtable list as if varbyte-encoded:
// small gaps and TFs are mostly one byte each, positions likewise.
func memEncodedEstimate(l *postings.List) int64 {
	n := int64(2 * l.Len())
	for _, ps := range l.Positions {
		n += int64(len(ps)) + 1
	}
	return n
}

// Dictionary returns the union of all live terms in (collection, term)
// order. Slots are segment-local and meaningless across the union;
// entries keep the slot of the first segment holding the term. Terms
// whose every posting is tombstoned remain listed until a compaction
// physically drops them — their Postings are empty.
func (m *Manager) Dictionary() []store.DictEntry {
	v, err := m.acquire()
	if err != nil {
		return nil
	}
	defer v.release()
	var all []store.DictEntry
	for _, s := range v.segs {
		all = append(all, s.dict...)
	}
	all = v.mem.dictionary(all)
	store.SortDictEntries(all)
	out := all[:0]
	for i, e := range all {
		if i > 0 && all[i-1].Collection == e.Collection && all[i-1].Term == e.Term {
			continue
		}
		out = append(out, e)
	}
	return out
}

// DocLens reports no document lengths: live indexes rank with plain
// TF-IDF (no BM25 length normalization).
func (m *Manager) DocLens() []uint32 { return nil }

// Runs describes the sealed segments plus the memtable as run
// metadata, satisfying search.PostingsSource.
func (m *Manager) Runs() []store.RunMeta {
	v, err := m.acquire()
	if err != nil {
		return nil
	}
	defer v.release()
	out := make([]store.RunMeta, 0, len(v.segs)+1)
	for _, s := range v.segs {
		out = append(out, store.RunMeta{
			File:     s.meta.File,
			FirstDoc: s.meta.FirstDoc,
			LastDoc:  s.meta.LastDoc,
			Lists:    s.meta.Lists,
			Bytes:    s.meta.Bytes,
		})
	}
	if docs := v.mem.numDocs(); docs > 0 {
		out = append(out, store.RunMeta{
			File:     "memtable",
			FirstDoc: v.mem.firstDoc,
			LastDoc:  v.mem.firstDoc + docs - 1,
			Lists:    v.mem.terms(),
		})
	}
	return out
}

// Seal freezes the memtable into an immutable on-disk segment and
// starts a fresh memtable. A no-op when the memtable is empty.
func (m *Manager) Seal() error {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if m.closed.Load() {
		return store.ErrClosed
	}
	return m.sealLocked()
}

func segFileName(id uint64) string  { return fmt.Sprintf("seg-%06d.post", id) }
func dictFileName(id uint64) string { return fmt.Sprintf("seg-%06d.dict", id) }

// sealLocked runs the seal under writeMu: encode the memtable, write
// segment files, persist the manifest (the commit point), persist
// tombstones over the new frontier, then swap the view. Queries keep
// running throughout — only the final pointer swap takes the write
// side of mu, and it does no I/O.
func (m *Manager) sealLocked() (err error) {
	if m.mem.numDocs() == 0 {
		return nil
	}
	tr := m.opTrace("seal")
	if tr != nil {
		defer func() { m.finishOp(tr, err) }()
	}
	next := m.nextDoc.Load()
	id := m.man.NextSeg
	meta := SegmentMeta{
		ID:       id,
		File:     segFileName(id),
		Dict:     dictFileName(id),
		FirstDoc: m.mem.firstDoc,
		LastDoc:  next - 1,
		Docs:     next - m.mem.firstDoc,
	}
	tr.SetAttr("segment", id)
	tr.SetAttr("docs", meta.Docs)
	esp := tr.StartSpan(telemetry.ReqStageEncode)
	// Forced-varbyte managers stay in the legacy unblocked layout; every
	// other codec choice seals long lists with block skip tables.
	data, dict, lists, err := m.mem.seal(m.sel, next-1, m.opts.Codec != "varbyte")
	if err != nil {
		esp.End()
		return err
	}
	esp.AddBytes(int64(len(data)))
	esp.AddItems(int64(lists))
	esp.End()
	meta.Lists = lists
	meta.Bytes = int64(len(data))
	wsp := tr.StartSpan(telemetry.ReqStageWrite)
	wsp.AddBytes(int64(len(data)))
	if err := writeFileAtomic(filepath.Join(m.dir, meta.File), data); err != nil {
		wsp.End()
		return err
	}
	if err := writeDictFile(m.dir, meta.Dict, dict); err != nil {
		wsp.End()
		os.Remove(filepath.Join(m.dir, meta.File))
		return err
	}
	seg, err := openSegment(m.dir, meta)
	wsp.End()
	if err != nil {
		os.Remove(filepath.Join(m.dir, meta.File))
		os.Remove(filepath.Join(m.dir, meta.Dict))
		return err
	}
	seg.decodes = &m.codecDecodes
	csp := tr.StartSpan(telemetry.ReqStageCommit)
	newMan := &Manifest{
		Version:  manifestVersion,
		NextDoc:  next,
		NextSeg:  id + 1,
		Purged:   m.man.Purged,
		Segments: append(append([]SegmentMeta(nil), m.man.Segments...), meta),
	}
	if err := newMan.save(m.dir); err != nil {
		csp.End()
		seg.run.Close()
		os.Remove(filepath.Join(m.dir, meta.File))
		os.Remove(filepath.Join(m.dir, meta.Dict))
		return err
	}
	// Manifest first, then tombstones: a crash between the two loses
	// recent deletions, never resurrects stale ones (see Open).
	if err := saveTombstones(m.dir, m.tomb.Load(), next); err != nil {
		csp.End()
		return err
	}
	newMem := newMemtable(next, m.opts.Positional)
	gen := m.gen.Add(1)
	m.mu.Lock()
	old := m.cur
	m.man = newMan
	m.mem = newMem
	segs := append(append([]*segment(nil), old.segs...), seg)
	m.cur = newView(segs, newMem, gen)
	nSegs := len(segs)
	m.mu.Unlock()
	old.release()
	csp.End()
	m.seals.Add(1)
	if m.opts.CompactAt > 0 && nSegs >= m.opts.CompactAt {
		m.startBackgroundCompaction()
	}
	return nil
}

// startBackgroundCompaction queues at most one compaction goroutine.
func (m *Manager) startBackgroundCompaction() {
	if m.closed.Load() || !m.compactPending.CompareAndSwap(false, true) {
		return
	}
	m.bg.Add(1)
	go func() {
		defer m.bg.Done()
		defer m.compactPending.Store(false)
		err := m.Compact(m.ctx)
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, store.ErrClosed) {
			m.errMu.Lock()
			m.lastCompactErr = err
			m.errMu.Unlock()
		}
	}()
}

// LastCompactionError reports the most recent background-compaction
// failure, if any.
func (m *Manager) LastCompactionError() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.lastCompactErr
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	st := Stats{
		Docs:        m.nextDoc.Load(),
		Seals:       m.seals.Load(),
		Compactions: m.compactions.Load(),
		Generation:  m.gen.Load(),
	}
	st.Purged = m.purged.Load()
	if d := m.tomb.Load(); d != nil {
		st.Deleted = d.deleted
	}
	v, err := m.acquire()
	if err != nil {
		return st
	}
	defer v.release()
	st.Segments = len(v.segs)
	for _, s := range v.segs {
		st.SegmentBytes += s.meta.Bytes
		st.SegmentLists += s.meta.Lists
	}
	st.MemtableDocs = v.mem.numDocs()
	st.MemtableTerms = v.mem.terms()
	st.MemtableTokens = v.mem.numTokens()
	return st
}

// Close seals any buffered documents, waits for background work, and
// releases every segment. Idempotent.
func (m *Manager) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	m.cancel()
	m.bg.Wait()
	m.writeMu.Lock()
	err := m.sealLocked()
	m.mu.Lock()
	v := m.cur
	m.cur = nil
	m.mu.Unlock()
	m.writeMu.Unlock()
	if v != nil {
		v.release()
	}
	return err
}
