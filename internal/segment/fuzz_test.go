package segment

import (
	"encoding/json"
	"errors"
	"testing"

	"fastinvert/internal/store"
)

// FuzzSegmentManifest feeds arbitrary bytes to the manifest parser:
// whatever the input, it must return a validated manifest or an error
// wrapping store.ErrCorruptIndex — never panic, and never accept a
// manifest that violates the invariants the manager relies on.
func FuzzSegmentManifest(f *testing.F) {
	valid, _ := json.Marshal(&Manifest{
		Version: manifestVersion,
		NextDoc: 20,
		NextSeg: 3,
		Segments: []SegmentMeta{
			{ID: 0, File: "seg-000000.post", Dict: "seg-000000.dict",
				FirstDoc: 0, LastDoc: 9, Docs: 10, Lists: 4, Bytes: 128},
			{ID: 2, File: "seg-000002.post", Dict: "seg-000002.dict",
				FirstDoc: 10, LastDoc: 19, Docs: 10, Lists: 2, Bytes: 64},
		},
	})
	f.Add(valid)
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"next_doc":5,"next_seg":1,"segments":[{"id":0,"file":"../evil","dict":"d","first_doc":0,"last_doc":4,"docs":5}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := parseManifest(raw)
		if err != nil {
			if !errors.Is(err, store.ErrCorruptIndex) {
				t.Fatalf("error does not wrap ErrCorruptIndex: %v", err)
			}
			return
		}
		// Accepted manifests must satisfy every invariant the manager
		// assumes without re-checking.
		if m.Version != manifestVersion || m.Purged > m.NextDoc {
			t.Fatalf("accepted invalid manifest: %+v", m)
		}
		prev := int64(-1)
		for _, s := range m.Segments {
			if s.File == "" || s.Dict == "" || s.ID >= m.NextSeg ||
				s.FirstDoc > s.LastDoc || int64(s.FirstDoc) <= prev ||
				s.LastDoc >= m.NextDoc || s.Docs != s.LastDoc-s.FirstDoc+1 {
				t.Fatalf("accepted invalid segment meta: %+v", s)
			}
			prev = int64(s.LastDoc)
		}
	})
}

// FuzzTombstoneBitmap feeds arbitrary bytes to the tombstone parser.
// Corrupt inputs must yield ErrCorruptIndex without panicking or
// allocating beyond the input size; accepted inputs must round-trip
// bit-exactly through marshal.
func FuzzTombstoneBitmap(f *testing.F) {
	b := (&bitmap{}).grown(21)
	for _, d := range []uint32{0, 7, 20} {
		b = b.withDoc(d, 21)
	}
	f.Add(marshalTombstones(b, 21))
	f.Add(marshalTombstones(&bitmap{}, 0))
	f.Add([]byte("FITS"))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, raw []byte) {
		bm, err := parseTombstones(raw)
		if err != nil {
			if !errors.Is(err, store.ErrCorruptIndex) {
				t.Fatalf("error does not wrap ErrCorruptIndex: %v", err)
			}
			return
		}
		// The word slice is bounded by the payload actually present.
		if len(bm.bits)*8 > len(raw)+7 {
			t.Fatalf("allocated %d bitmap bytes from %d input bytes", len(bm.bits)*8, len(raw))
		}
		if got := bm.countPrefix(bm.numDocs); got != bm.deleted {
			t.Fatalf("deleted = %d but %d bits set", bm.deleted, got)
		}
		if out := marshalTombstones(bm, bm.numDocs); string(out) != string(raw) {
			t.Fatalf("accepted tombstones do not round-trip")
		}
	})
}
