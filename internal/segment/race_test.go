package segment

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastinvert/internal/trie"
)

// settle waits for the goroutine count to drop back to base, tolerating
// runtime stragglers, and returns the final count.
func settle(base int) int {
	deadline := time.Now().Add(3 * time.Second)
	n := runtime.NumGoroutine()
	for n > base && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestConcurrentQueriesDuringSealAndCompaction hammers postings reads
// from 16 goroutines while the writer interleaves adds, deletes, seals
// and compactions. Run under -race this is the generation-swap safety
// proof: no query may error or observe a torn view mid-swap.
func TestConcurrentQueriesDuringSealAndCompaction(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{SealEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	terms := []string{"alpha", "beta", "gamma", "delta", "omega"}
	stop := make(chan struct{})
	var qerr atomic.Value
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				term := terms[(g+i)%len(terms)]
				l, err := m.Postings(term)
				if err != nil {
					qerr.Store(fmt.Errorf("Postings(%q): %w", term, err))
					return
				}
				// Postings must be strictly ascending whatever view the
				// query landed on.
				for j := 1; j < l.Len(); j++ {
					if l.DocIDs[j] <= l.DocIDs[j-1] {
						qerr.Store(fmt.Errorf("disordered postings for %q: %v", term, l.DocIDs))
						return
					}
				}
				if i%7 == 0 {
					m.Dictionary()
					m.Stats()
				}
			}
		}(g)
	}

	for i := 0; i < 200; i++ {
		text := docText(terms[i%len(terms)], terms[(i+1)%len(terms)])
		id, err := m.AddDocument(text)
		if err != nil {
			t.Fatal(err)
		}
		if i%5 == 2 {
			if err := m.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		if i%50 == 49 {
			if err := m.Compact(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := qerr.Load(); err != nil {
		t.Fatal(err)
	}
	if err := m.LastCompactionError(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelledCompactionLeaksNothing cancels mid-compaction and
// checks that every worker goroutine drains and the index still
// answers queries from its pre-compaction state.
func TestCancelledCompactionLeaksNothing(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	m, err := Open(dir, Options{CompactWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Enough lists across enough segments that the merge has real work.
	for s := 0; s < 4; s++ {
		for i := 0; i < 50; i++ {
			if _, err := m.AddDocument(docText(fmt.Sprintf("w%dq%dz", s, i), "alpha")); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	before, err := m.Postings("alpha")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Compact(ctx) }()
	time.Sleep(2 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		// The merge can legitimately win the race against cancel; only
		// a completed compaction may return nil.
		if st := m.Stats(); st.Compactions != 1 {
			t.Fatal("nil error from a compaction that did not complete")
		}
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled compaction = %v", err)
	}
	after, err := m.Postings("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.DocIDs, before.DocIDs) {
		t.Fatalf("postings changed across cancelled compaction: %d vs %d docs",
			after.Len(), before.Len())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if n := settle(base); n > base {
		t.Fatalf("%d goroutines linger after cancelled compaction (baseline %d)", n, base)
	}
}

// TestCloseDuringBackgroundCompaction closes the manager while an
// auto-triggered compaction may be in flight; Close must wait it out
// without leaking goroutines or deadlocking.
func TestCloseDuringBackgroundCompaction(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		m, err := Open(dir, Options{SealEvery: 3, CompactAt: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if _, err := m.AddDocument(docText("alpha", fmt.Sprintf("r%dw%dx", round, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if n := settle(base); n > base {
		t.Fatalf("%d goroutines linger after Close (baseline %d)", n, base)
	}
}

// TestViewOutlivesReplacedSegmentFiles verifies the refcount contract:
// a query that acquired a view before a compaction reads replaced,
// unlinked segments to completion.
func TestViewOutlivesReplacedSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for s := 0; s < 3; s++ {
		for i := 0; i < 10; i++ {
			if _, err := m.AddDocument(docText("alpha")); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	v, err := m.acquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The old view's segments are unlinked now; reading through the
	// retained view must still succeed via the open descriptors.
	var got []uint32
	dead := m.tomb.Load()
	coll := int32(trie.IndexString("alpha"))
	for _, s := range v.segs {
		part, _, err := s.postings(coll, "alpha")
		if err != nil {
			t.Fatalf("read from replaced segment: %v", err)
		}
		if part == nil {
			continue
		}
		for _, d := range part.DocIDs {
			if !dead.has(d) {
				got = append(got, d)
			}
		}
	}
	v.release()
	if len(got) != 30 {
		t.Fatalf("read %d postings from replaced segments, want 30", len(got))
	}
}
