package segment

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sort"

	"fastinvert/internal/store"
	"fastinvert/internal/telemetry"
)

// compactPendingName is the merge output staged inside the directory
// until the commit renames it to its final segment name. A leftover
// from a crashed compaction is unreferenced by the manifest and simply
// overwritten by the next one.
const compactPendingName = "compact.pending"

// Compact folds every sealed segment into one, dropping tombstoned
// postings, via the store package's sharded parallel merge. The long
// phase — reading, remapping, re-encoding — runs without any manager
// lock, against a retained view and a tombstone snapshot; only the
// final commit takes the write lock. Seals may land concurrently:
// their segments survive untouched next to the compacted one.
//
// A no-op when there is at most one segment and nothing to purge.
func (m *Manager) Compact(ctx context.Context) (err error) {
	m.compactMu.Lock()
	defer m.compactMu.Unlock()
	if m.closed.Load() {
		return store.ErrClosed
	}
	v, err := m.acquire()
	if err != nil {
		return err
	}
	defer v.release()
	segs := v.segs
	dead := m.tomb.Load()
	if len(segs) == 0 || (len(segs) == 1 && !anyDeadIn(segs[0].meta, dead)) {
		return nil
	}
	tr := m.opTrace("compact")
	if tr != nil {
		defer func() { m.finishOp(tr, err) }()
		tr.SetAttr("segments", len(segs))
	}

	// Union dictionary: fresh slots assigned per collection in term
	// order, so the compacted segment's table is sorted and dense.
	msp := tr.StartSpan(telemetry.ReqStageMerge)
	msp.AddItems(int64(len(segs)))
	union, remaps := unionDict(segs)
	sources := make([]store.CompactSource, len(segs))
	for i, s := range segs {
		sources[i] = store.CompactSource{
			Path:  filepath.Join(m.dir, s.meta.File),
			Remap: remapFunc(remaps[i]),
		}
	}
	tmp := filepath.Join(m.dir, compactPendingName)
	stats, err := store.CompactRuns(ctx, sources, tmp, store.CompactOptions{
		Codec:   m.opts.Codec,
		Workers: m.opts.CompactWorkers,
		Drop:    dead.has,
	})
	if err != nil {
		msp.End()
		os.Remove(tmp)
		return err
	}
	msp.AddBytes(stats.Bytes)

	// Keep only dictionary terms whose remapped list survived the
	// purge — fully-deleted terms vanish from both table and dict.
	rf, err := store.OpenRunFile(tmp)
	if err != nil {
		msp.End()
		os.Remove(tmp)
		return err
	}
	filtered := union[:0]
	for _, e := range union {
		if _, ok := rf.Find(uint32(e.Collection), uint32(e.Slot)); ok {
			filtered = append(filtered, e)
		}
	}
	rf.Close()
	msp.End()

	// Commit: brief, under the write lock, no heavy I/O.
	csp := tr.StartSpan(telemetry.ReqStageCommit)
	defer csp.End()
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if m.closed.Load() {
		os.Remove(tmp)
		return store.ErrClosed
	}
	id := m.man.NextSeg
	meta := SegmentMeta{
		ID:       id,
		File:     segFileName(id),
		Dict:     dictFileName(id),
		FirstDoc: segs[0].meta.FirstDoc,
		LastDoc:  segs[len(segs)-1].meta.LastDoc,
		Lists:    stats.Lists,
		Bytes:    stats.Bytes,
	}
	meta.Docs = meta.LastDoc - meta.FirstDoc + 1
	if err := os.Rename(tmp, filepath.Join(m.dir, meta.File)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := writeDictFile(m.dir, meta.Dict, filtered); err != nil {
		os.Remove(filepath.Join(m.dir, meta.File))
		return err
	}
	seg, err := openSegment(m.dir, meta)
	if err != nil {
		os.Remove(filepath.Join(m.dir, meta.File))
		os.Remove(filepath.Join(m.dir, meta.Dict))
		return err
	}
	seg.decodes = &m.codecDecodes
	inputs := make(map[uint64]bool, len(segs))
	for _, s := range segs {
		inputs[s.meta.ID] = true
	}
	newMetas := []SegmentMeta{meta}
	for _, sm := range m.man.Segments {
		if !inputs[sm.ID] {
			newMetas = append(newMetas, sm)
		}
	}
	sort.Slice(newMetas, func(i, j int) bool { return newMetas[i].FirstDoc < newMetas[j].FirstDoc })
	newMan := &Manifest{
		Version:  manifestVersion,
		NextDoc:  m.man.NextDoc,
		NextSeg:  id + 1,
		Purged:   m.man.Purged,
		Segments: newMetas,
	}
	if err := newMan.save(m.dir); err != nil {
		seg.run.Close()
		os.Remove(filepath.Join(m.dir, meta.File))
		os.Remove(filepath.Join(m.dir, meta.Dict))
		return err
	}
	// Tombstones physically purged from the compacted range come off
	// the bitmap; deletions that raced in after the snapshot stay.
	cur := m.tomb.Load()
	nb := cur.without(dead, meta.FirstDoc, meta.LastDoc)
	newMan.Purged += cur.deleted - nb.deleted
	if err := saveTombstones(m.dir, nb, newMan.NextDoc); err != nil {
		return err
	}
	m.tomb.Store(nb)
	m.purged.Store(newMan.Purged)

	gen := m.gen.Add(1)
	m.mu.Lock()
	old := m.cur
	m.man = newMan
	newSegs := []*segment{seg}
	for _, s := range old.segs {
		if !inputs[s.meta.ID] {
			newSegs = append(newSegs, s)
		}
	}
	sort.Slice(newSegs, func(i, j int) bool {
		return newSegs[i].meta.FirstDoc < newSegs[j].meta.FirstDoc
	})
	m.cur = newView(newSegs, m.mem, gen)
	m.mu.Unlock()
	old.release()
	m.compactions.Add(1)

	// Unlink the replaced files: in-flight queries hold the open
	// descriptors, so their reads complete against the unlinked inodes.
	for _, s := range segs {
		os.Remove(filepath.Join(m.dir, s.meta.File))
		os.Remove(filepath.Join(m.dir, s.meta.Dict))
	}
	return nil
}

// anyDeadIn reports whether the bitmap tombstones any doc in the
// segment's range.
func anyDeadIn(meta SegmentMeta, dead *bitmap) bool {
	if dead == nil || dead.deleted == 0 {
		return false
	}
	for d := meta.FirstDoc; d <= meta.LastDoc; d++ {
		if dead.has(d) {
			return true
		}
		if d == ^uint32(0) {
			break
		}
	}
	return false
}

// unionDict merges the segments' sorted dictionaries into one
// deduplicated dictionary with fresh dense slots (per collection, in
// term order) and returns, per segment, the mapping from its local
// (collection, slot) keys onto the union slots.
func unionDict(segs []*segment) ([]store.DictEntry, []map[uint64]uint32) {
	total := 0
	for _, s := range segs {
		total += len(s.dict)
	}
	all := make([]store.DictEntry, 0, total)
	for _, s := range segs {
		all = append(all, s.dict...)
	}
	store.SortDictEntries(all)

	type termKey struct {
		coll int32
		term string
	}
	slotOf := make(map[termKey]uint32, len(all))
	union := make([]store.DictEntry, 0, len(all))
	curColl := int32(-1)
	var next uint32
	for i, e := range all {
		if i > 0 && all[i-1].Collection == e.Collection && all[i-1].Term == e.Term {
			continue
		}
		if e.Collection != curColl {
			curColl = e.Collection
			next = 0
		}
		slotOf[termKey{e.Collection, e.Term}] = next
		union = append(union, store.DictEntry{
			Term:       e.Term,
			Collection: e.Collection,
			Slot:       int32(next),
		})
		next++
	}

	remaps := make([]map[uint64]uint32, len(segs))
	for i, s := range segs {
		mp := make(map[uint64]uint32, len(s.dict))
		for _, e := range s.dict {
			mp[slotKey(uint32(e.Collection), uint32(e.Slot))] =
				slotOf[termKey{e.Collection, e.Term}]
		}
		remaps[i] = mp
	}
	return union, remaps
}

func slotKey(coll, slot uint32) uint64 { return uint64(coll)<<32 | uint64(slot) }

// remapFunc adapts a remap table to store.CompactSource's callback.
func remapFunc(mp map[uint64]uint32) func(coll, slot uint32) (uint32, bool) {
	return func(coll, slot uint32) (uint32, bool) {
		n, ok := mp[slotKey(coll, slot)]
		return n, ok
	}
}

// writeDictFile atomically writes a segment dictionary.
func writeDictFile(dir, name string, entries []store.DictEntry) error {
	var buf bytes.Buffer
	if err := store.WriteDictionary(&buf, entries); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, name), buf.Bytes())
}
