// Package segment implements incremental LSM-style indexing on top of
// the batch pipeline's building blocks: documents stream into an
// in-memory write segment (the memtable — a cpuindexer trie+B-tree
// dictionary plus postings stores), which seals into immutable on-disk
// segments in the run-file format, which background compaction folds
// together with the store package's sharded parallel merge. Deletions
// are tombstone bits filtered at read time and purged at compaction.
// Readers work against generation-stamped immutable views, so queries
// never block on a seal or a compaction — they finish against the view
// they started with while writers swap in the next one.
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"path/filepath"

	"fastinvert/internal/store"
)

// Tombstone file layout (tombstones.bin, little-endian):
//
//	magic   u32  "FITS"
//	version u32
//	numDocs u32  documents covered (== manifest NextDoc at write time)
//	deleted u32  set bits in the payload
//	crc32   u32  IEEE CRC of the payload
//	payload      ceil(numDocs/8) bytes, bit d = doc d deleted
//
// The file covers only sealed documents. Tombstones over memtable
// documents live purely in memory: the documents they suppress are
// themselves lost on crash, so persisting the marks without the data
// would leave dangling deletes for docIDs that get re-assigned.
const (
	tombFileName = "tombstones.bin"
	tombMagic    = 0x53544946 // "FITS" little-endian
	tombVersion  = 1
	tombHdrSize  = 20
)

// bitmap is an immutable tombstone snapshot. Bit doc set means the
// document is deleted. Mutation is copy-on-write (withDoc, without):
// queries load the current pointer once and filter against a frozen
// state, with no locking on the read path.
type bitmap struct {
	bits    []uint64
	numDocs uint32 // universe size: docs 0..numDocs-1 are representable
	deleted uint32
}

func (b *bitmap) has(doc uint32) bool {
	if b == nil || doc >= b.numDocs {
		return false
	}
	w := int(doc >> 6)
	if w >= len(b.bits) {
		return false
	}
	return b.bits[w]>>(doc&63)&1 != 0
}

// withDoc returns a copy covering numDocs documents with doc marked
// deleted. Returns the receiver unchanged if the bit is already set.
func (b *bitmap) withDoc(doc, numDocs uint32) *bitmap {
	if b.has(doc) {
		return b
	}
	nb := &bitmap{
		bits:    make([]uint64, (int(numDocs)+63)/64),
		numDocs: numDocs,
	}
	if b != nil {
		copy(nb.bits, b.bits)
		nb.deleted = b.deleted
	}
	nb.bits[doc>>6] |= 1 << (doc & 63)
	nb.deleted++
	return nb
}

// without returns a copy with every bit cleared that is set in purged
// and falls inside [first, last] — the bits a compaction just turned
// into physically absent postings.
func (b *bitmap) without(purged *bitmap, first, last uint32) *bitmap {
	nb := &bitmap{
		bits:    make([]uint64, len(b.bits)),
		numDocs: b.numDocs,
		deleted: b.deleted,
	}
	copy(nb.bits, b.bits)
	for d := first; d <= last && d < purged.numDocs; d++ {
		if purged.has(d) && nb.has(d) {
			nb.bits[d>>6] &^= 1 << (d & 63)
			nb.deleted--
		}
		if d == ^uint32(0) {
			break
		}
	}
	return nb
}

// grown returns a bitmap covering at least n docs, preserving every
// bit; returns the receiver when it already covers n.
func (b *bitmap) grown(n uint32) *bitmap {
	if b != nil && b.numDocs >= n {
		return b
	}
	nb := &bitmap{bits: make([]uint64, (int(n)+63)/64), numDocs: n}
	if b != nil {
		copy(nb.bits, b.bits)
		nb.deleted = b.deleted
	}
	return nb
}

// countPrefix reports the set bits among docs [0, n).
func (b *bitmap) countPrefix(n uint32) uint32 {
	if b == nil {
		return 0
	}
	if n > b.numDocs {
		n = b.numDocs
	}
	var c uint32
	full := int(n >> 6)
	for w := 0; w < full && w < len(b.bits); w++ {
		c += uint32(bits.OnesCount64(b.bits[w]))
	}
	if rem := n & 63; rem != 0 && full < len(b.bits) {
		c += uint32(bits.OnesCount64(b.bits[full] & (1<<rem - 1)))
	}
	return c
}

// marshalTombstones serializes the first n docs of the bitmap.
func marshalTombstones(b *bitmap, n uint32) []byte {
	payload := make([]byte, (int(n)+7)/8)
	for d := uint32(0); d < n; d++ {
		if b.has(d) {
			payload[d>>3] |= 1 << (d & 7)
		}
	}
	out := make([]byte, tombHdrSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:], tombMagic)
	binary.LittleEndian.PutUint32(out[4:], tombVersion)
	binary.LittleEndian.PutUint32(out[8:], n)
	binary.LittleEndian.PutUint32(out[12:], b.countPrefix(n))
	binary.LittleEndian.PutUint32(out[16:], crc32.ChecksumIEEE(payload))
	copy(out[tombHdrSize:], payload)
	return out
}

// parseTombstones validates and decodes a tombstone file. Corruption
// yields an error wrapping store.ErrCorruptIndex, never a panic; every
// count is checked against the actual byte size before any
// size-proportional allocation (the payload length check is against
// bytes already in hand, and the word slice is bounded by it).
func parseTombstones(data []byte) (*bitmap, error) {
	if len(data) < tombHdrSize {
		return nil, fmt.Errorf("tombstones: %d bytes, need %d header: %w",
			len(data), tombHdrSize, store.ErrCorruptIndex)
	}
	if m := binary.LittleEndian.Uint32(data); m != tombMagic {
		return nil, fmt.Errorf("tombstones: bad magic %#x: %w", m, store.ErrCorruptIndex)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != tombVersion {
		return nil, fmt.Errorf("tombstones: unsupported version %d: %w", v, store.ErrCorruptIndex)
	}
	numDocs := binary.LittleEndian.Uint32(data[8:])
	deleted := binary.LittleEndian.Uint32(data[12:])
	crc := binary.LittleEndian.Uint32(data[16:])
	payload := data[tombHdrSize:]
	if want := (int64(numDocs) + 7) / 8; int64(len(payload)) != want {
		return nil, fmt.Errorf("tombstones: %d payload bytes for %d docs, want %d: %w",
			len(payload), numDocs, want, store.ErrCorruptIndex)
	}
	if deleted > numDocs {
		return nil, fmt.Errorf("tombstones: %d deleted of %d docs: %w",
			deleted, numDocs, store.ErrCorruptIndex)
	}
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("tombstones: payload CRC %#x, header says %#x: %w",
			got, crc, store.ErrCorruptIndex)
	}
	b := &bitmap{
		bits:    make([]uint64, (int(numDocs)+63)/64),
		numDocs: numDocs,
		deleted: deleted,
	}
	var count uint32
	for i, by := range payload {
		count += uint32(bits.OnesCount8(by))
		b.bits[i>>3] |= uint64(by) << (8 * (i & 7))
	}
	if count != deleted {
		return nil, fmt.Errorf("tombstones: %d bits set, header says %d: %w",
			count, deleted, store.ErrCorruptIndex)
	}
	// Trailing bits past numDocs in the final byte must be zero, or
	// has() and countPrefix would disagree about the same file.
	if rem := numDocs & 7; rem != 0 {
		if payload[len(payload)-1]>>rem != 0 {
			return nil, fmt.Errorf("tombstones: set bits beyond doc %d: %w",
				numDocs-1, store.ErrCorruptIndex)
		}
	}
	return b, nil
}

// loadTombstones reads dir's tombstone file; a missing file is an
// empty bitmap (nothing deleted), anything else must parse cleanly.
func loadTombstones(dir string) (*bitmap, error) {
	raw, err := os.ReadFile(filepath.Join(dir, tombFileName))
	if os.IsNotExist(err) {
		return &bitmap{}, nil
	}
	if err != nil {
		return nil, err
	}
	return parseTombstones(raw)
}

// saveTombstones atomically persists the sealed-doc prefix [0, n) of
// the bitmap.
func saveTombstones(dir string, b *bitmap, n uint32) error {
	return writeFileAtomic(filepath.Join(dir, tombFileName), marshalTombstones(b, n))
}

// writeFileAtomic writes data via temp file + fsync + rename so a
// crash leaves either the old content or the new, never a torn file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
