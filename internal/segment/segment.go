package segment

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"fastinvert/internal/encoding"
	"fastinvert/internal/postings"
	"fastinvert/internal/store"
	"fastinvert/internal/telemetry"
)

// segment is one immutable sealed segment: an open run-format postings
// file plus its sorted dictionary, reference-counted so a compaction
// can unlink the file while in-flight queries keep reading through the
// still-open descriptor.
type segment struct {
	meta SegmentMeta
	run  *store.RunFile
	dict []store.DictEntry
	refs atomic.Int64

	// decodes points at the owning Manager's per-codec decode counters
	// (nil for segments opened outside a manager, e.g. in tests).
	decodes *[encoding.NumCodecs]atomic.Uint64
}

// openSegment opens and cross-checks a segment's files against its
// manifest entry. Mismatches wrap store.ErrCorruptIndex.
func openSegment(dir string, meta SegmentMeta) (*segment, error) {
	run, err := store.OpenRunFile(filepath.Join(dir, meta.File))
	if err != nil {
		return nil, fmt.Errorf("segment %d: %w", meta.ID, err)
	}
	if run.NumLists() != meta.Lists {
		run.Close()
		return nil, fmt.Errorf("segment %d: %d lists on disk, manifest says %d: %w",
			meta.ID, run.NumLists(), meta.Lists, store.ErrCorruptIndex)
	}
	if run.NumLists() > 0 {
		if first, last := run.DocRange(); first < meta.FirstDoc || last > meta.LastDoc {
			run.Close()
			return nil, fmt.Errorf("segment %d: doc range [%d,%d] outside manifest [%d,%d]: %w",
				meta.ID, first, last, meta.FirstDoc, meta.LastDoc, store.ErrCorruptIndex)
		}
	}
	df, err := os.Open(filepath.Join(dir, meta.Dict))
	if err != nil {
		run.Close()
		return nil, fmt.Errorf("segment %d: %w", meta.ID, err)
	}
	dict, err := store.ReadDictionary(df)
	df.Close()
	if err != nil {
		run.Close()
		return nil, fmt.Errorf("segment %d dictionary: %w", meta.ID, err)
	}
	if len(dict) != run.NumLists() {
		run.Close()
		return nil, fmt.Errorf("segment %d: %d dictionary terms for %d lists: %w",
			meta.ID, len(dict), run.NumLists(), store.ErrCorruptIndex)
	}
	// refs starts at zero: views are the only owners. The current view
	// always references every current segment, so a segment lives
	// until the last view naming it drains.
	return &segment{meta: meta, run: run, dict: dict}, nil
}

func (s *segment) retain() { s.refs.Add(1) }

func (s *segment) release() {
	if s.refs.Add(-1) == 0 {
		s.run.Close()
	}
}

// postings returns the term's list in this segment (nil when absent)
// plus its encoded on-disk size.
func (s *segment) postings(coll int32, term string) (*postings.List, int64, error) {
	return s.postingsCtx(context.Background(), coll, term)
}

// postingsCtx is postings under a (possibly traced) context: the
// dictionary probe gets a dict span and the list fetch flows through
// store.RunFile.ReadListCtx for pread/decode spans.
func (s *segment) postingsCtx(ctx context.Context, coll int32, term string) (*postings.List, int64, error) {
	dsp := telemetry.TraceFrom(ctx).StartSpan(telemetry.ReqStageDict)
	e, ok := store.Lookup(s.dict, coll, term)
	dsp.End()
	if !ok {
		return nil, 0, nil
	}
	re, ok := s.run.Find(uint32(e.Collection), uint32(e.Slot))
	if !ok {
		return nil, 0, fmt.Errorf("segment %d: dictionary slot (%d,%d) has no list: %w",
			s.meta.ID, e.Collection, e.Slot, store.ErrCorruptIndex)
	}
	if s.decodes != nil {
		if id := re.Codec(); id < encoding.NumCodecs {
			s.decodes[id].Add(1)
		}
	}
	l, err := s.run.ReadListCtx(ctx, re)
	if err != nil {
		return nil, 0, fmt.Errorf("segment %d: %w", s.meta.ID, err)
	}
	return l, int64(re.Length), nil
}

// blocksCtx returns the term's block-at-a-time view within this
// segment (nil when absent): the stored skip table for blocked
// entries, one exact pseudo-block for short unblocked lists.
func (s *segment) blocksCtx(ctx context.Context, coll int32, term string) (*store.BlockList, error) {
	dsp := telemetry.TraceFrom(ctx).StartSpan(telemetry.ReqStageDict)
	e, ok := store.Lookup(s.dict, coll, term)
	dsp.End()
	if !ok {
		return nil, nil
	}
	re, ok := s.run.Find(uint32(e.Collection), uint32(e.Slot))
	if !ok {
		return nil, fmt.Errorf("segment %d: dictionary slot (%d,%d) has no list: %w",
			s.meta.ID, e.Collection, e.Slot, store.ErrCorruptIndex)
	}
	if s.decodes != nil {
		if id := re.Codec(); id < encoding.NumCodecs {
			s.decodes[id].Add(1)
		}
	}
	bl, err := s.run.ReadBlocksCtx(ctx, re)
	if err != nil {
		return nil, fmt.Errorf("segment %d: %w", s.meta.ID, err)
	}
	if bl != nil {
		return bl, nil
	}
	l, err := s.run.ReadListCtx(ctx, re)
	if err != nil {
		return nil, fmt.Errorf("segment %d: %w", s.meta.ID, err)
	}
	return store.BlockListFromList(l), nil
}

// view is one immutable read snapshot: the sealed segments in
// ascending doc order plus the memtable that was live when the view
// was taken. Queries acquire the current view, finish against it, and
// release it; seals and compactions swap in a new view and release
// the old one, which tears down replaced segments once the last
// in-flight query drains.
type view struct {
	segs []*segment
	mem  *memtable
	gen  uint64
	refs atomic.Int64
}

// newView takes one reference on every segment; the view's own
// lifetime starts at one reference (the manager's).
func newView(segs []*segment, mem *memtable, gen uint64) *view {
	for _, s := range segs {
		s.retain()
	}
	v := &view{segs: segs, mem: mem, gen: gen}
	v.refs.Store(1)
	return v
}

func (v *view) retain() { v.refs.Add(1) }

func (v *view) release() {
	if v.refs.Add(-1) == 0 {
		for _, s := range v.segs {
			s.release()
		}
	}
}
