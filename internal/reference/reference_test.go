package reference

import (
	"sort"
	"strings"
	"testing"

	"fastinvert/internal/corpus"
)

// literalSource serves hand-written documents split across files.
type literalSource struct {
	files [][]string
}

func (s *literalSource) NumFiles() int         { return len(s.files) }
func (s *literalSource) FileName(i int) string { return "ref-test.txt" }
func (s *literalSource) ReadFile(i int) ([]byte, bool, error) {
	var sb strings.Builder
	for _, d := range s.files[i] {
		sb.WriteString(corpus.DocDelim)
		sb.WriteString(d)
	}
	return []byte(sb.String()), false, nil
}

func smallSource() *literalSource {
	return &literalSource{files: [][]string{
		{"gpu indexing accelerates inverted files", "indexing again here"},
		{"more gpu text", "inverted files on heterogeneous platforms"},
	}}
}

func TestBuildFromSource(t *testing.T) {
	idx, err := BuildFromSource(smallSource())
	if err != nil {
		t.Fatal(err)
	}
	if idx.Docs != 4 {
		t.Errorf("Docs = %d, want 4", idx.Docs)
	}
	if idx.Terms() == 0 || idx.Tokens == 0 {
		t.Fatalf("degenerate index: %d terms, %d tokens", idx.Terms(), idx.Tokens)
	}
	// "gpu" appears in docs 0 (file 0) and 2 (file 1): docBase must
	// offset the second file's docIDs.
	l := idx.Lists["gpu"]
	if l == nil || len(l.DocIDs) != 2 || l.DocIDs[0] != 0 || l.DocIDs[1] != 2 {
		t.Errorf("gpu postings = %+v, want docs [0 2]", l)
	}
	// "indexing" appears twice in separate docs of file 0.
	l = idx.Lists["index"]
	if l == nil || len(l.DocIDs) != 2 || l.DocIDs[0] != 0 || l.DocIDs[1] != 1 {
		t.Errorf("index postings = %+v, want docs [0 1]", l)
	}
	// Stop words never get postings.
	if idx.Lists["on"] != nil {
		t.Error("stop word 'on' was indexed")
	}
	// Every list must be docID-sorted strictly ascending.
	for term, l := range idx.Lists {
		for i := 1; i < len(l.DocIDs); i++ {
			if l.DocIDs[i] <= l.DocIDs[i-1] {
				t.Errorf("term %q postings unsorted: %v", term, l.DocIDs)
			}
		}
	}
}

func TestSortedTerms(t *testing.T) {
	idx, err := BuildFromSource(smallSource())
	if err != nil {
		t.Fatal(err)
	}
	terms := idx.SortedTerms()
	if len(terms) != idx.Terms() {
		t.Fatalf("SortedTerms returned %d of %d terms", len(terms), idx.Terms())
	}
	if !sort.StringsAreSorted(terms) {
		t.Errorf("terms not sorted: %v", terms)
	}
}

func TestBuildPositional(t *testing.T) {
	idx, err := BuildPositionalFromSource(&literalSource{files: [][]string{
		{"alpha beta alpha gamma"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	l := idx.Lists["alpha"]
	if l == nil || !l.Positional() {
		t.Fatalf("positional build lost positions: %+v", l)
	}
	if len(l.Positions) != 1 || len(l.Positions[0]) != 2 ||
		l.Positions[0][0] != 0 || l.Positions[0][1] != 2 {
		t.Errorf("alpha positions = %v, want [[0 2]]", l.Positions)
	}
	if l.TFs[0] != 2 {
		t.Errorf("alpha TF = %d, want 2", l.TFs[0])
	}
}

func TestEqualDetectsMutations(t *testing.T) {
	build := func() *Index {
		idx, err := BuildFromSource(smallSource())
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	idx := build()
	if ok, at := idx.Equal(build().Lists); !ok {
		t.Fatalf("index not equal to an identical rebuild (at %q)", at)
	}

	mutations := []func(*Index){
		func(o *Index) { delete(o.Lists, "gpu") },
		func(o *Index) { o.Lists["gpu"].DocIDs[0]++ },
		func(o *Index) { o.Lists["gpu"].TFs[0]++ },
		func(o *Index) {
			l := o.Lists["gpu"]
			l.DocIDs = l.DocIDs[:1]
			l.TFs = l.TFs[:1]
		},
	}
	for i, mutate := range mutations {
		other := build()
		mutate(other)
		if ok, _ := idx.Equal(other.Lists); ok {
			t.Errorf("mutation %d not detected by Equal", i)
		}
	}
}

func TestEqualPositional(t *testing.T) {
	src := &literalSource{files: [][]string{{"alpha beta alpha"}}}
	pos, err := BuildPositionalFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := BuildFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	// Positional vs non-positional lists must not compare equal.
	if ok, _ := pos.Equal(flat.Lists); ok {
		t.Error("positional index compared equal to a flat one")
	}
	other, err := BuildPositionalFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	other.Lists["alpha"].Positions[0][1]++
	if ok, _ := pos.Equal(other.Lists); ok {
		t.Error("position mutation not detected by Equal")
	}
}
