// Package reference provides a deliberately simple, obviously correct
// single-threaded indexer: a hash map from stemmed terms to postings
// lists, fed by the same parsing pipeline as the real system. It is
// the ground truth that the pipelined CPU+GPU engine and the MapReduce
// baselines are tested against, and the serial baseline for the
// regrouping ablation (§III.C's 15x claim).
package reference

import (
	"sort"

	"fastinvert/internal/corpus"
	"fastinvert/internal/parser"
	"fastinvert/internal/postings"
	"fastinvert/internal/trie"
)

// Index is a term -> postings map with document order preserved.
type Index struct {
	Lists  map[string]*postings.List
	Docs   int64
	Tokens int64
}

// BuildFromSource indexes an entire corpus source serially.
func BuildFromSource(src corpus.Source) (*Index, error) {
	return build(src, false)
}

// BuildPositionalFromSource indexes with token positions recorded.
func BuildPositionalFromSource(src corpus.Source) (*Index, error) {
	return build(src, true)
}

func build(src corpus.Source, positional bool) (*Index, error) {
	idx := &Index{Lists: make(map[string]*postings.List)}
	p := parser.New(nil)
	p.Positional = positional
	var docBase uint32
	for i := 0; i < src.NumFiles(); i++ {
		stored, compressed, err := src.ReadFile(i)
		if err != nil {
			return nil, err
		}
		plain, err := corpus.Decompress(stored, compressed)
		if err != nil {
			return nil, err
		}
		docs := corpus.SplitDocs(plain)
		blk := parser.NewBlock(0)
		for d, doc := range docs {
			p.ParseDoc(uint32(d), doc, blk)
		}
		if err := idx.AddBlock(blk, docBase); err != nil {
			return nil, err
		}
		docBase += uint32(len(docs))
		idx.Docs += int64(len(docs))
	}
	return idx, nil
}

// AddBlock folds one parsed block into the index, restoring full terms
// from the trie-stripped group streams.
func (x *Index) AddBlock(blk *parser.Block, docBase uint32) error {
	// Deterministic group order (map iteration is random).
	idxs := make([]int, 0, len(blk.Groups))
	for idx := range blk.Groups {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, gi := range idxs {
		g := blk.Groups[gi]
		err := g.ForEachPos(func(doc, pos uint32, stripped []byte) error {
			term := string(trie.Restore(gi, stripped))
			l := x.Lists[term]
			if l == nil {
				l = &postings.List{}
				x.Lists[term] = l
			}
			x.Tokens++
			if g.Positional {
				return l.AddPos(doc+docBase, pos)
			}
			return l.Add(doc + docBase)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Terms reports the number of distinct terms.
func (x *Index) Terms() int { return len(x.Lists) }

// SortedTerms returns all terms in lexicographic order.
func (x *Index) SortedTerms() []string {
	out := make([]string, 0, len(x.Lists))
	for t := range x.Lists {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether another term->list mapping matches exactly,
// returning the first differing term for diagnostics.
func (x *Index) Equal(other map[string]*postings.List) (bool, string) {
	if len(other) != len(x.Lists) {
		return false, "(term count)"
	}
	for term, l := range x.Lists {
		o := other[term]
		if o == nil || o.Len() != l.Len() {
			return false, term
		}
		for i := range l.DocIDs {
			if l.DocIDs[i] != o.DocIDs[i] || l.TFs[i] != o.TFs[i] {
				return false, term
			}
		}
		if l.Positional() != o.Positional() {
			return false, term
		}
		if l.Positional() {
			for i := range l.Positions {
				if len(l.Positions[i]) != len(o.Positions[i]) {
					return false, term
				}
				for j := range l.Positions[i] {
					if l.Positions[i][j] != o.Positions[i][j] {
						return false, term
					}
				}
			}
		}
	}
	return true, ""
}
