// Package sampling implements the paper's CPU/GPU load split (§III.E):
// a small sample of the collection is parsed to find the "popular"
// trie collections (the Zipf head, where a few common terms dominate
// and B-tree paths stay cache-resident), which go to CPU indexers in
// token-balanced sets; the remaining collections (the Zipf tail, cache
// hostile but data-parallel friendly) go to the GPUs by index modulo
// the GPU count.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"fastinvert/internal/corpus"
	"fastinvert/internal/parser"
	"fastinvert/internal/trie"
)

// Config tunes the sampling pass.
type Config struct {
	// Ratio is the sampled fraction of each file's documents; the
	// paper samples 1 MB out of every 1 GB (0.001). Synthetic corpora
	// are small, so the default is 0.02 with at least one document
	// per file.
	Ratio float64

	// PopularCount is the number of popular collections; the paper
	// reports "around one hundred".
	PopularCount int
}

// DefaultConfig mirrors the paper's choices at synthetic scale.
func DefaultConfig() Config { return Config{Ratio: 0.02, PopularCount: 100} }

// Counts holds per-trie-collection token counts from the sample.
type Counts struct {
	Tokens    [trie.NumCollections]int64
	Total     int64
	DocsSeen  int64
	FilesSeen int
}

// Sample parses a deterministic fraction of src and returns the
// per-collection token counts (the paper's "several tests on the
// sample to determine membership").
func Sample(src corpus.Source, cfg Config) (*Counts, error) {
	if cfg.Ratio <= 0 {
		cfg.Ratio = DefaultConfig().Ratio
	}
	var c Counts
	p := parser.New(nil)
	for i := 0; i < src.NumFiles(); i++ {
		stored, compressed, err := src.ReadFile(i)
		if err != nil {
			return nil, fmt.Errorf("sampling: %w", err)
		}
		plain, err := corpus.Decompress(stored, compressed)
		if err != nil {
			return nil, fmt.Errorf("sampling: %w", err)
		}
		docs := corpus.SplitDocs(plain)
		take := int(cfg.Ratio * float64(len(docs)))
		if take < 1 {
			take = 1
		}
		if take > len(docs) {
			take = len(docs)
		}
		blk := parser.NewBlock(0)
		stride := len(docs) / take
		if stride < 1 {
			stride = 1
		}
		taken := 0
		for d := 0; d < len(docs) && taken < take; d += stride {
			p.ParseDoc(uint32(d), docs[d], blk)
			taken++
		}
		c.DocsSeen += int64(taken)
		c.FilesSeen++
		for idx, g := range blk.Groups {
			c.Tokens[idx] += int64(g.Tokens)
			c.Total += int64(g.Tokens)
		}
	}
	return &c, nil
}

// Kind identifies the indexer class owning a collection.
type Kind uint8

// Owner kinds.
const (
	KindCPU Kind = iota
	KindGPU
)

// Assignment maps every trie collection to exactly one indexer
// (§III.E: "once a trie collection is assigned to a particular
// indexer, it is bound with this indexer through the program
// lifetime").
type Assignment struct {
	// Popular lists the popular collections, descending by sampled
	// token count.
	Popular []int

	// CPUSets[i] is CPU indexer i's exclusive collection set.
	CPUSets [][]int

	NumCPU int
	NumGPU int

	owner []ownerRec // indexed by collection
}

type ownerRec struct {
	kind Kind
	idx  int16
}

// Assign builds the paper's partition: the PopularCount collections
// with the highest sampled token counts are split into NumCPU sets of
// near-equal token mass (greedy longest-processing-time); every other
// collection goes to GPU (i mod NumGPU), or round-robin over the CPU
// indexers when no GPUs are configured.
func Assign(c *Counts, nCPU, nGPU, popularCount int) (*Assignment, error) {
	if nCPU < 0 || nGPU < 0 || nCPU+nGPU == 0 {
		return nil, fmt.Errorf("sampling: need at least one indexer (cpu=%d gpu=%d)", nCPU, nGPU)
	}
	if nCPU == 0 {
		// GPU-only configuration (Table IV scenario i): every
		// collection, popular or not, goes to a GPU by i mod N.
		a := &Assignment{NumCPU: 0, NumGPU: nGPU, owner: make([]ownerRec, trie.NumCollections)}
		for idx := range a.owner {
			a.owner[idx] = ownerRec{KindGPU, int16(idx % nGPU)}
		}
		return a, nil
	}
	if popularCount <= 0 {
		popularCount = DefaultConfig().PopularCount
	}
	a := &Assignment{
		NumCPU:  nCPU,
		NumGPU:  nGPU,
		CPUSets: make([][]int, nCPU),
		owner:   make([]ownerRec, trie.NumCollections),
	}

	// Rank collections by sampled token count; only collections seen
	// in the sample can be popular.
	type cc struct {
		idx    int
		tokens int64
	}
	ranked := make([]cc, 0, 1024)
	for idx, n := range c.Tokens {
		if n > 0 {
			ranked = append(ranked, cc{idx, n})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].tokens != ranked[j].tokens {
			return ranked[i].tokens > ranked[j].tokens
		}
		return ranked[i].idx < ranked[j].idx
	})
	if popularCount > len(ranked) {
		popularCount = len(ranked)
	}

	isPopular := make(map[int]bool, popularCount)
	load := make([]int64, nCPU)
	for _, r := range ranked[:popularCount] {
		a.Popular = append(a.Popular, r.idx)
		isPopular[r.idx] = true
		// LPT: ranked is descending, so placing each next collection
		// on the least-loaded indexer balances token mass.
		minI := 0
		for i := 1; i < nCPU; i++ {
			if load[i] < load[minI] {
				minI = i
			}
		}
		load[minI] += r.tokens
		a.CPUSets[minI] = append(a.CPUSets[minI], r.idx)
		a.owner[r.idx] = ownerRec{KindCPU, int16(minI)}
	}

	// Everything else: unpopular.
	for idx := 0; idx < trie.NumCollections; idx++ {
		if isPopular[idx] {
			continue
		}
		if nGPU > 0 {
			a.owner[idx] = ownerRec{KindGPU, int16(idx % nGPU)}
		} else {
			a.owner[idx] = ownerRec{KindCPU, int16(idx % nCPU)}
		}
	}
	return a, nil
}

// AssignRandom is the ablation counterpart of Assign: the "popular"
// set handed to the CPU indexers is chosen uniformly at random from
// the collections seen in the sample instead of by token mass, so the
// cache-affinity argument of §III.E is deliberately broken while
// everything else (set sizes, mod-N GPU split) stays identical.
func AssignRandom(c *Counts, nCPU, nGPU, popularCount int, seed int64) (*Assignment, error) {
	if nCPU <= 0 {
		return Assign(c, nCPU, nGPU, popularCount)
	}
	if popularCount <= 0 {
		popularCount = DefaultConfig().PopularCount
	}
	seen := make([]int, 0, 1024)
	for idx, n := range c.Tokens {
		if n > 0 {
			seen = append(seen, idx)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(seen), func(i, j int) { seen[i], seen[j] = seen[j], seen[i] })
	if popularCount > len(seen) {
		popularCount = len(seen)
	}
	a := &Assignment{
		NumCPU:  nCPU,
		NumGPU:  nGPU,
		CPUSets: make([][]int, nCPU),
		owner:   make([]ownerRec, trie.NumCollections),
	}
	isPopular := make(map[int]bool, popularCount)
	load := make([]int64, nCPU)
	for _, idx := range seen[:popularCount] {
		a.Popular = append(a.Popular, idx)
		isPopular[idx] = true
		minI := 0
		for i := 1; i < nCPU; i++ {
			if load[i] < load[minI] {
				minI = i
			}
		}
		load[minI] += c.Tokens[idx]
		a.CPUSets[minI] = append(a.CPUSets[minI], idx)
		a.owner[idx] = ownerRec{KindCPU, int16(minI)}
	}
	for idx := 0; idx < trie.NumCollections; idx++ {
		if isPopular[idx] {
			continue
		}
		if nGPU > 0 {
			a.owner[idx] = ownerRec{KindGPU, int16(idx % nGPU)}
		} else {
			a.owner[idx] = ownerRec{KindCPU, int16(idx % nCPU)}
		}
	}
	return a, nil
}

// Owner reports which indexer owns a collection.
func (a *Assignment) Owner(coll int) (Kind, int) {
	r := a.owner[coll]
	return r.kind, int(r.idx)
}

// CPULoadBalance reports max/min sampled-token load across CPU sets
// given the counts used for assignment (1.0 = perfect balance; only
// meaningful when popular collections exist).
func CPULoadBalance(a *Assignment, c *Counts) float64 {
	if len(a.Popular) == 0 {
		return 1
	}
	loads := make([]int64, a.NumCPU)
	for i, set := range a.CPUSets {
		for _, coll := range set {
			loads[i] += c.Tokens[coll]
		}
	}
	minL, maxL := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if minL == 0 {
		return float64(maxL)
	}
	return float64(maxL) / float64(minL)
}
