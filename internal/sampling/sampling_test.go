package sampling

import (
	"testing"

	"fastinvert/internal/corpus"
	"fastinvert/internal/trie"
)

func testSource() *corpus.MemSource {
	p := corpus.ClueWeb09(1)
	p.VocabSize = 8000
	p.DocsPerFile = 16
	p.MeanDocTokens = 80
	return corpus.NewMemSource(corpus.NewGenerator(p), 4)
}

func TestSampleCounts(t *testing.T) {
	c, err := Sample(testSource(), Config{Ratio: 0.5, PopularCount: 50})
	if err != nil {
		t.Fatal(err)
	}
	if c.Total <= 0 || c.FilesSeen != 4 {
		t.Fatalf("sample degenerate: %+v", c)
	}
	var sum int64
	for _, n := range c.Tokens {
		sum += n
	}
	if sum != c.Total {
		t.Errorf("token sum %d != total %d", sum, c.Total)
	}
	// Sampling a fraction must see fewer docs than the collection.
	if c.DocsSeen >= 4*16 {
		t.Errorf("sampled %d docs of %d", c.DocsSeen, 4*16)
	}
}

func TestSampleDeterministic(t *testing.T) {
	a, err := Sample(testSource(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(testSource(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total || a.DocsSeen != b.DocsSeen {
		t.Error("sampling not deterministic")
	}
}

func TestAssignPartitionsEverything(t *testing.T) {
	c, err := Sample(testSource(), Config{Ratio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(c, 2, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Popular) == 0 || len(a.Popular) > 100 {
		t.Fatalf("popular = %d", len(a.Popular))
	}
	// Every collection has exactly one owner; popular ones are CPU.
	popSet := map[int]bool{}
	for _, p := range a.Popular {
		popSet[p] = true
	}
	for coll := 0; coll < trie.NumCollections; coll++ {
		kind, idx := a.Owner(coll)
		switch kind {
		case KindCPU:
			if idx < 0 || idx >= 2 {
				t.Fatalf("collection %d: bad CPU index %d", coll, idx)
			}
			if !popSet[coll] {
				t.Fatalf("unpopular collection %d on CPU with GPUs present", coll)
			}
		case KindGPU:
			if popSet[coll] {
				t.Fatalf("popular collection %d on GPU", coll)
			}
			if idx != coll%2 {
				t.Fatalf("collection %d on GPU %d, want %d (i mod N)", coll, idx, coll%2)
			}
		}
	}
	// CPU sets are disjoint and cover the popular set.
	seen := map[int]bool{}
	total := 0
	for _, set := range a.CPUSets {
		for _, coll := range set {
			if seen[coll] {
				t.Fatalf("collection %d in two CPU sets", coll)
			}
			seen[coll] = true
			total++
		}
	}
	if total != len(a.Popular) {
		t.Errorf("CPU sets hold %d, popular %d", total, len(a.Popular))
	}
}

// TestPaperModExample reproduces §III.E's worked example: unpopular
// indices (0,13,27,175,384,5810,10041,17316) over two GPUs.
func TestPaperModExample(t *testing.T) {
	var c Counts
	// Make a few other collections popular so the listed ones stay
	// unpopular.
	c.Tokens[trie.IndexString("theory")] = 100
	a, err := Assign(&c, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantGPU0 := []int{0, 384, 5810, 17316}
	wantGPU1 := []int{13, 27, 175, 10041}
	for _, coll := range wantGPU0 {
		if kind, idx := a.Owner(coll); kind != KindGPU || idx != 0 {
			t.Errorf("collection %d: got (%v,%d), want GPU 0", coll, kind, idx)
		}
	}
	for _, coll := range wantGPU1 {
		if kind, idx := a.Owner(coll); kind != KindGPU || idx != 1 {
			t.Errorf("collection %d: got (%v,%d), want GPU 1", coll, kind, idx)
		}
	}
}

func TestAssignNoGPUSpreadsOverCPUs(t *testing.T) {
	c, err := Sample(testSource(), Config{Ratio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(c, 3, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	for coll := 0; coll < trie.NumCollections; coll++ {
		kind, idx := a.Owner(coll)
		if kind != KindCPU || idx < 0 || idx >= 3 {
			t.Fatalf("collection %d: (%v,%d) with no GPUs", coll, kind, idx)
		}
	}
}

func TestAssignBalance(t *testing.T) {
	c, err := Sample(testSource(), Config{Ratio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(c, 2, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bal := CPULoadBalance(a, c); bal > 1.6 {
		t.Errorf("CPU token balance %.2f too skewed", bal)
	}
}

func TestAssignErrors(t *testing.T) {
	var c Counts
	if _, err := Assign(&c, 0, 0, 10); err == nil {
		t.Error("zero indexers must fail")
	}
	if _, err := Assign(&c, -1, 2, 10); err == nil {
		t.Error("negative CPU count must fail")
	}
}

func TestAssignGPUOnly(t *testing.T) {
	// Table IV scenario (i): no CPU indexers, everything on the GPUs.
	var c Counts
	c.Tokens[100] = 50
	a, err := Assign(&c, 0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Popular) != 0 {
		t.Error("GPU-only assignment has no CPU-popular set")
	}
	for coll := 0; coll < trie.NumCollections; coll += 511 {
		kind, idx := a.Owner(coll)
		if kind != KindGPU || idx != coll%2 {
			t.Fatalf("collection %d: (%v,%d)", coll, kind, idx)
		}
	}
}
