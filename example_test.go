package fastinvert_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"

	"fastinvert"
)

// ExampleNormalizeTerm shows the query-side term normalization, which
// matches exactly what the indexing pipeline stores.
func ExampleNormalizeTerm() {
	fmt.Println(fastinvert.NormalizeTerm("Parallelized"))
	fmt.Println(fastinvert.NormalizeTerm("INDEXING"))
	fmt.Println(fastinvert.NormalizeTerm("dictionaries"))
	// Output:
	// parallel
	// index
	// dictionari
}

// ExampleTrieIndex shows Table I's trie-collection mapping.
func ExampleTrieIndex() {
	fmt.Println(fastinvert.TrieIndex("application")) // "app" prefix
	fmt.Println(fastinvert.TrieIndex("0195"))        // pure number
	fmt.Println(fastinvert.TrieIndex("at"))          // short term
	fmt.Println(fastinvert.NumTrieCollections)
	// Output:
	// 442
	// 1
	// 11
	// 17613
}

// ExampleBuilder_Build indexes a small synthetic collection and runs a
// ranked query against the persisted inverted files.
func ExampleBuilder_Build() {
	dir, err := os.MkdirTemp("", "fastinvert-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := fastinvert.DefaultOptions()
	opts.OutDir = dir
	opts.Positional = true
	builder, err := fastinvert.NewBuilder(opts)
	if err != nil {
		log.Fatal(err)
	}
	src := fastinvert.GenerateCorpus(fastinvert.ClueWeb09Profile(1), 4)
	report, err := builder.Build(src)
	if err != nil {
		log.Fatal(err)
	}

	idx, err := fastinvert.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	searcher := fastinvert.NewSearcher(idx)
	top, err := searcher.TopK(3, "water", "people")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d docs; top query hit exists: %v\n",
		report.Docs, len(top) > 0)
	// Output:
	// indexed 256 docs; top query hit exists: true
}

// ExampleBuilder_BuildContext builds under a context, then shows the
// cancellation contract: a canceled context aborts the build with
// context.Canceled and no partial index left behind to open.
func ExampleBuilder_BuildContext() {
	dir, err := os.MkdirTemp("", "fastinvert-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := fastinvert.DefaultOptions()
	opts.OutDir = dir
	builder, err := fastinvert.NewBuilder(opts)
	if err != nil {
		log.Fatal(err)
	}
	src := fastinvert.GenerateCorpus(fastinvert.ClueWeb09Profile(1), 2)

	report, err := builder.BuildContext(context.Background(), src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d docs\n", report.Docs)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = builder.BuildContext(canceled, src)
	fmt.Printf("canceled build: %v\n", errors.Is(err, context.Canceled))
	// Output:
	// indexed 128 docs
	// canceled build: true
}
