// Benchmarks regenerating every table and figure of the paper's
// evaluation (§IV). Each benchmark runs the full experiment at a
// reduced scale and reports the headline quantity as a custom metric,
// so `go test -bench .` prints the whole reproduction in one sweep;
// `cmd/benchrunner` renders the same experiments as paper-style tables
// at any scale.
package fastinvert_test

import (
	"testing"

	"fastinvert/internal/experiments"
)

func benchScale() experiments.Scale { return experiments.Scale{Files: 8, Factor: 0.5} }

func init() {
	// One trial per configuration inside benchmarks; testing.B
	// already repeats the whole experiment.
	experiments.Trials = 1
}

// BenchmarkTableIII regenerates the collection statistics table.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIII(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Tokens), "clueweb-tokens")
	}
}

// BenchmarkTableIV regenerates the four indexer-configuration timings.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIV(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[3].IndexTputMBps, "hybrid-idx-MB/s")
		b.ReportMetric(rows[2].IndexTputMBps, "2cpu-idx-MB/s")
	}
}

// BenchmarkTableV regenerates the CPU/GPU workload split.
func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableV(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.GPUTerms)/float64(r.CPUTerms), "gpu/cpu-terms")
	}
}

// BenchmarkTableVI regenerates the cross-collection performance table.
func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableVI(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ThroughputMBps, "clueweb-MB/s")
		b.ReportMetric(rows[2].ThroughputMBps, "wikipedia-MB/s")
		b.ReportMetric(rows[3].ThroughputMBps, "loc-MB/s")
	}
}

// BenchmarkFig10 regenerates the parser-count sweep.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig10(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[5].WithGPUs, "m6-gpu-MB/s")
		b.ReportMetric(pts[5].ParseOnly, "m6-parseonly-MB/s")
	}
}

// BenchmarkFig11 regenerates the per-file throughput series.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, shift, err := experiments.Fig11(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := series[2].Throughput
		b.ReportMetric(last[0], "first-file-MB/s")
		b.ReportMetric(last[shift], "post-shift-MB/s")
	}
}

// BenchmarkFig12 regenerates the MapReduce comparison.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].PerCoreMBps, "ours-percore-MB/s")
		b.ReportMetric(rows[2].PerCoreMBps, "ivory-percore-MB/s")
		b.ReportMetric(rows[3].PerCoreMBps, "spmr-percore-MB/s")
	}
}

// BenchmarkAblationRegroup measures §III.C's regrouping speedup.
func BenchmarkAblationRegroup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationRegroup(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Speedup(), "speedup-x")
	}
}

// BenchmarkAblationStringCache measures the node string caches.
func BenchmarkAblationStringCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationStringCache(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Speedup(), "speedup-x")
	}
}

// BenchmarkAblationTrieHeight measures the height-1/2/3 trade-off.
func BenchmarkAblationTrieHeight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationTrieHeight(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].IndexSec/rows[2].IndexSec, "h3-vs-h1-speedup-x")
		b.ReportMetric(rows[2].TopShare, "h3-top-share")
	}
}

// BenchmarkAblationCoalescing measures the coalesced-access speedup in
// the GPU model.
func BenchmarkAblationCoalescing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationCoalescing()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Speedup(), "speedup-x")
	}
}

// BenchmarkAblationSplit measures the popularity split against a
// random CPU/GPU split.
func BenchmarkAblationSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationSplit(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Speedup(), "speedup-x")
	}
}

// BenchmarkCompressionCodecs measures the §II codec trade-off on the
// collection's final postings.
func BenchmarkCompressionCodecs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CompressionComparison(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.BitsPerPosting, r.Codec+"-bits/posting")
		}
	}
}

// BenchmarkAblationDecompress measures the two read/decompress
// schedules of §IV.A at six parsers.
func BenchmarkAblationDecompress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationDecompress(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[5].Scheme1Sec/rows[5].Scheme2Sec, "m6-scheme1/scheme2")
	}
}
