// Command tracecheck validates JSONL traces written by the fastinvert
// tools: build traces from hetindex -trace (schema shape, per-worker
// span nesting, the busy+stall wall-clock coverage gate) and, with
// -requests, request traces from hetserve -trace-requests (span-tree
// shape, known stages, the child-sum ≤ parent-wall invariant, and a
// query-stage coverage gate). CI runs both against seeded workloads.
//
// Usage:
//
//	tracecheck [-min-coverage 0.9] build-trace.jsonl
//	tracecheck -requests [-min-stages 5] [-min-traces 1] request-trace.jsonl
//
// Exit status 0 means the trace is well-formed and the gates passed;
// 1 names the first violated invariant.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"fastinvert/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	minCov := flag.Float64("min-coverage", 0.9,
		"minimum busy+stall fraction of build wall-clock (0 disables the gate)")
	requests := flag.Bool("requests", false,
		"validate a request trace (hetserve -trace-requests) instead of a build trace")
	minStages := flag.Int("min-stages", 5,
		"request mode: some trace must cover at least this many distinct query stages (0 disables)")
	minTraces := flag.Int("min-traces", 1,
		"request mode: minimum number of traces in the stream")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-coverage 0.9] build-trace.jsonl")
		fmt.Fprintln(os.Stderr, "       tracecheck -requests [-min-stages 5] [-min-traces 1] request-trace.jsonl")
		os.Exit(2)
	}
	if *requests {
		checkRequests(flag.Arg(0), *minStages, *minTraces)
		return
	}

	st, err := telemetry.ValidateTraceFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace OK: %d events (%d spans, %d samples, %d counters), wall %.3fs\n",
		st.Events, st.Spans, st.Samples, st.Counters, st.WallSec)
	printStages(st.StageSec)
	fmt.Printf("busy+stall coverage of wall-clock: %.1f%%\n", 100*st.BusyStallCoverage)
	if *minCov > 0 && st.BusyStallCoverage < *minCov {
		log.Fatalf("coverage %.1f%% below the %.0f%% gate — stage spans are missing build time",
			100*st.BusyStallCoverage, 100**minCov)
	}
}

// checkRequests validates a request-trace stream: every record's
// schema and span tree (including the span-sum invariant) via the
// telemetry validator, then the stream-level gates.
func checkRequests(path string, minStages, minTraces int) {
	st, err := telemetry.ValidateRequestTraceFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request traces OK: %d traces, %d spans, %d slow, %d errors\n",
		st.Traces, st.Spans, st.Slow, st.Errors)
	endpoints := make([]string, 0, len(st.Endpoints))
	for e := range st.Endpoints {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		fmt.Printf("  %-10s %6d traces\n", e, st.Endpoints[e])
	}
	printStages(st.StageMs)
	fmt.Printf("widest query-stage coverage in one trace: %d stages\n", st.MaxQueryStages)
	if st.Traces < minTraces {
		log.Fatalf("%d traces below the %d-trace gate — the load generator produced too little traffic",
			st.Traces, minTraces)
	}
	if minStages > 0 && st.MaxQueryStages < minStages {
		log.Fatalf("no trace covers %d query stages (max %d) — request spans are missing query work",
			minStages, st.MaxQueryStages)
	}
}

func printStages(stageVals map[string]float64) {
	stages := make([]string, 0, len(stageVals))
	for s := range stageVals {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		fmt.Printf("  %-14s %12.4f\n", s, stageVals[s])
	}
}
