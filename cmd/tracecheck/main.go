// Command tracecheck validates a JSONL build trace written by
// hetindex -trace: schema shape, per-worker span nesting, and the
// busy+stall wall-clock coverage gate. CI's smoke job runs it against
// a tiny corpus build.
//
// Usage:
//
//	tracecheck [-min-coverage 0.9] build-trace.jsonl
//
// Exit status 0 means the trace is well-formed and the coverage gate
// passed; 1 names the first violated invariant.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"fastinvert/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	minCov := flag.Float64("min-coverage", 0.9,
		"minimum busy+stall fraction of build wall-clock (0 disables the gate)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-coverage 0.9] build-trace.jsonl")
		os.Exit(2)
	}
	st, err := telemetry.ValidateTraceFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace OK: %d events (%d spans, %d samples, %d counters), wall %.3fs\n",
		st.Events, st.Spans, st.Samples, st.Counters, st.WallSec)
	stages := make([]string, 0, len(st.StageSec))
	for s := range st.StageSec {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		fmt.Printf("  %-14s %9.4f s\n", s, st.StageSec[s])
	}
	fmt.Printf("busy+stall coverage of wall-clock: %.1f%%\n", 100*st.BusyStallCoverage)
	if *minCov > 0 && st.BusyStallCoverage < *minCov {
		log.Fatalf("coverage %.1f%% below the %.0f%% gate — stage spans are missing build time",
			100*st.BusyStallCoverage, 100**minCov)
	}
}
