// Command hetserve serves queries over a built index via HTTP/JSON:
//
//	hetserve -index ./index -addr :8080
//
// With -live the directory holds an LSM-style live index (created if
// empty) that accepts documents and deletions over HTTP while serving
// queries:
//
//	hetserve -live -index ./segments -addr :8080
//
// Endpoints:
//
//	/search?q=parallel+inverted&mode=topk&k=10   ranked / Boolean / phrase queries
//	/postings?term=parallel&limit=50             one term's postings (404 if absent)
//	/healthz                                     liveness + index shape
//	/metrics                                     Prometheus text exposition: query counters,
//	                                             latency histogram, cache hit/miss/eviction,
//	                                             pool in-flight, index shape
//	/debug/vars                                  expvar + QPS, p50/p99 latency, cache + pool stats
//	/debug/slowlog                               ring-buffered slow-query log (see -slow-ms)
//	/debug/trace                                 retained request traces; ?id=X dumps one span tree
//	/debug/pprof/                                net/http/pprof (behind -pprof; query goroutines
//	                                             carry endpoint and generation pprof labels)
//
// Live mode adds (POST only):
//
//	/ingest          body = document text; returns the assigned docID
//	/delete?doc=42   tombstone one document (idempotent; 404 if never assigned)
//	/seal            force the memtable into an on-disk segment
//	/compact         fold all segments into one, purging tombstones
//
// Queries execute on a bounded worker pool under a per-query deadline,
// reading postings through a sharded LRU cache; see internal/serve and
// internal/segment.
//
// Request tracing: -sample N head-samples one request in N into a full
// span tree (dictionary, cache, pread, decode, merge, memtable stages),
// retained at /debug/trace, broken down per stage on /metrics, and —
// with -trace-requests — streamed as JSON lines that cmd/tracecheck
// -requests validates. Requests at or over -slow-ms always land in
// /debug/slowlog, traced or not.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastinvert/internal/segment"
	"fastinvert/internal/serve"
	"fastinvert/internal/store"
	"fastinvert/internal/telemetry"
)

func main() {
	var (
		indexDir = flag.String("index", "", "built index directory (required; see cmd/hetindex)")
		addr     = flag.String("addr", ":8080", "listen address")
		cacheMB  = flag.Int64("cache-mb", 64, "postings cache budget in MiB")
		shards   = flag.Int("cache-shards", 16, "postings cache shard count")
		workers  = flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-query deadline")
		pprofOn  = flag.Bool("pprof", false, "mount /debug/pprof/ handlers")

		sample   = flag.Int("sample", 64, "head-sample one request in N into a full trace (0 disables tracing)")
		slowMS   = flag.Int("slow-ms", 250, "slow-query log threshold in milliseconds (negative logs every request)")
		traceReq = flag.String("trace-requests", "", "stream sampled request traces as JSON lines to this file")

		live       = flag.Bool("live", false, "serve a live LSM-style index from -index (created if empty)")
		positional = flag.Bool("positional", false, "live mode: index token positions (phrase queries)")
		sealEvery  = flag.Int("seal-every", 10000, "live mode: auto-seal the memtable every N documents (0 = manual)")
		compactAt  = flag.Int("compact-at", 4, "live mode: background-compact at N segments (0 = manual)")
		codec      = flag.String("codec", "auto", "live mode: postings codec for sealed segments")
		selfcheck  = flag.Bool("selfcheck", false, "live mode: drive a seeded ingest+query load against the server, then exit (CI trace harness)")
	)
	flag.Parse()
	if *indexDir == "" {
		fmt.Fprintln(os.Stderr, "hetserve: -index is required")
		flag.Usage()
		os.Exit(2)
	}

	// Registered before every closer below, so it runs after them: a
	// selfcheck failure must still seal the memtable and flush the trace
	// stream before the process reports it.
	failed := false
	defer func() {
		if failed {
			os.Exit(1)
		}
	}()

	cfg := serve.Config{
		CacheBytes:   *cacheMB << 20,
		CacheShards:  *shards,
		Workers:      *workers,
		QueryTimeout: *timeout,
		EnablePprof:  *pprofOn,
		SampleEvery:  *sample,
		SlowQuery:    time.Duration(*slowMS) * time.Millisecond,
	}
	if *traceReq != "" {
		tw, err := telemetry.CreateReqTraceFile(*traceReq)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetserve: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := tw.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "hetserve: request trace: %v\n", err)
			}
		}()
		cfg.ReqTraces = tw
	}
	if *selfcheck && !*live {
		fmt.Fprintln(os.Stderr, "hetserve: -selfcheck requires -live")
		os.Exit(2)
	}
	var srv *serve.Server
	if *live {
		mgr, err := segment.Open(*indexDir, segment.Options{
			Codec:      *codec,
			Positional: *positional,
			SealEvery:  *sealEvery,
			CompactAt:  *compactAt,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetserve: open live index: %v\n", err)
			os.Exit(1)
		}
		defer mgr.Close() // seals the memtable so every ingested doc persists
		srv = serve.NewLive(mgr, cfg)
		st := mgr.Stats()
		where := *addr
		if *selfcheck {
			where = "a loopback selfcheck port"
		}
		fmt.Printf("hetserve: live index, %d docs in %d segments — listening on %s\n",
			mgr.LiveDocs(), st.Segments, where)
	} else {
		idx, err := store.OpenIndex(*indexDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetserve: open index: %v\n", err)
			os.Exit(1)
		}
		defer idx.Close()
		srv = serve.New(idx, cfg)
		fmt.Printf("hetserve: %d terms, %d runs — listening on %s\n",
			idx.Terms(), len(idx.Runs()), *addr)
	}
	defer srv.Close()

	if *selfcheck {
		if err := runSelfCheck(srv.Handler(), *positional); err != nil {
			fmt.Fprintf(os.Stderr, "hetserve: selfcheck: %v\n", err)
			failed = true
			return
		}
		fmt.Println("hetserve: selfcheck passed")
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "hetserve: %v\n", err)
			os.Exit(1)
		}
	case <-sig:
		fmt.Println("hetserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "hetserve: shutdown: %v\n", err)
		}
	}
}
