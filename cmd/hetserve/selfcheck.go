package main

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// selfCheckVocab is the seeded corpus vocabulary. Plain lowercase
// words that survive query normalization, so every term ingested is
// also queryable verbatim.
var selfCheckVocab = []string{
	"parallel", "inverted", "index", "posting", "merge", "segment",
	"batch", "kernel", "device", "host", "stream", "partition",
	"sort", "scan", "gather", "scatter", "buffer", "throughput",
	"latency", "pipeline", "shard", "token", "corpus", "document",
}

// runSelfCheck binds the server to a loopback port and drives a
// seeded, deterministic ingest + maintenance + query load against it
// over real HTTP — the workload CI's trace-serve job traces and then
// validates with cmd/tracecheck -requests. It exercises every traced
// endpoint: ingest, delete, seal, compact, search (all modes) and
// postings, plus the debug surfaces.
func runSelfCheck(h http.Handler, positional bool) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: h}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	c := &http.Client{Timeout: 30 * time.Second}
	rng := rand.New(rand.NewSource(42))

	doc := func() string {
		n := 8 + rng.Intn(12)
		words := make([]string, n)
		for i := range words {
			words[i] = selfCheckVocab[rng.Intn(len(selfCheckVocab))]
		}
		return strings.Join(words, " ")
	}
	queries := func() error {
		modes := []string{"and", "or", "topk"}
		if positional {
			modes = append(modes, "phrase")
		}
		for i := 0; i < 12; i++ {
			w1 := selfCheckVocab[rng.Intn(len(selfCheckVocab))]
			w2 := selfCheckVocab[rng.Intn(len(selfCheckVocab))]
			mode := modes[i%len(modes)]
			q := url.Values{"q": {w1 + " " + w2}, "mode": {mode}, "k": {"5"}}
			if err := get(c, base+"/search?"+q.Encode()); err != nil {
				return err
			}
		}
		for i := 0; i < 4; i++ {
			w := selfCheckVocab[rng.Intn(len(selfCheckVocab))]
			// Unknown terms 404 in live mode; both outcomes are valid load.
			if err := getStatus(c, base+"/postings?term="+w,
				http.StatusOK, http.StatusNotFound); err != nil {
				return err
			}
		}
		return nil
	}

	// Two ingest waves with a seal between them, so queries fan out over
	// sealed segments and the memtable; deletions plus a compaction
	// exercise the background-operation traces.
	nextDoc := 0
	for wave := 0; wave < 2; wave++ {
		for i := 0; i < 40; i++ {
			if err := post(c, base+"/ingest", doc()); err != nil {
				return err
			}
			nextDoc++
		}
		for i := 0; i < 3; i++ {
			victim := rng.Intn(nextDoc)
			if err := post(c, fmt.Sprintf("%s/delete?doc=%d", base, victim), ""); err != nil {
				return err
			}
		}
		if err := post(c, base+"/seal", ""); err != nil {
			return err
		}
		if err := queries(); err != nil {
			return err
		}
	}
	if err := post(c, base+"/compact", ""); err != nil {
		return err
	}
	if err := queries(); err != nil {
		return err
	}

	// The observability surfaces must be live after the load.
	for _, check := range []struct{ path, want string }{
		{"/debug/slowlog", `"entries"`},
		{"/debug/trace", `"traces"`},
		{"/metrics", "hetserve_stage_seconds"},
		{"/metrics", "hetserve_endpoint_seconds"},
		{"/metrics", "hetserve_inflight_requests"},
	} {
		body, err := fetch(c, base+check.path)
		if err != nil {
			return err
		}
		if !strings.Contains(body, check.want) {
			return fmt.Errorf("%s: missing %q in response", check.path, check.want)
		}
	}
	return nil
}

func fetch(c *http.Client, u string) (string, error) {
	resp, err := c.Get(u)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d: %s", u, resp.StatusCode, body)
	}
	return string(body), nil
}

func get(c *http.Client, u string) error {
	_, err := fetch(c, u)
	return err
}

func getStatus(c *http.Client, u string, accept ...int) error {
	resp, err := c.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	for _, s := range accept {
		if resp.StatusCode == s {
			return nil
		}
	}
	return fmt.Errorf("GET %s: unexpected status %d", u, resp.StatusCode)
}

func post(c *http.Client, u, body string) error {
	resp, err := c.Post(u, "text/plain", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", u, resp.StatusCode, raw)
	}
	return nil
}
