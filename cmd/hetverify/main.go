// Command hetverify runs the differential correctness and fault-
// injection harness standalone: randomized corpora are built through
// the concurrent pipelined executor and through every trusted baseline
// (reference serial indexer, SPIMI, sort-based, single-pass MR, Ivory
// MR), and the indexes are asserted term-for-term identical. With
// -chaos, every fault kind is additionally injected per seed and the
// build must end in a verified-correct index or a typed error with no
// leaked goroutines.
//
// With -live, each seed instead drives the interleaved live-index
// harness: a seeded schedule of inserts, deletes, queries, seals and
// compactions against the LSM-style segment manager, diffed
// term-for-term against a serial from-scratch rebuild of the surviving
// documents at every seal and compaction boundary, at the end of the
// schedule, and again after a close/reopen cycle.
//
// Usage:
//
//	hetverify -seeds 10 -start 1000 [-positional] [-chaos] [-live] [-v]
//
// Any failure prints its seed — rerun with -start <seed> -seeds 1 -v
// to reproduce deterministically.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"fastinvert/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetverify: ")
	var (
		seeds      = flag.Int("seeds", 10, "number of random corpus seeds")
		start      = flag.Int64("start", 1000, "first seed")
		positional = flag.Bool("positional", false, "build positional postings (pins positions against the reference)")
		chaos      = flag.Bool("chaos", false, "also run the fault-injection matrix per seed")
		live       = flag.Bool("live", false, "run the interleaved live-index differential harness instead of the batch one")
		liveOps    = flag.Int("live-ops", 400, "operations per live schedule")
		verbose    = flag.Bool("v", false, "print every comparison, not just failures")
	)
	flag.Parse()

	if *live {
		runLive(*seeds, *start, *liveOps, *positional, *verbose)
		return
	}

	ctx := context.Background()
	failures := 0
	t0 := time.Now()
	for i := 0; i < *seeds; i++ {
		seed := *start + int64(i)
		cfg := verify.Config{Seed: seed, Positional: *positional}
		res, err := verify.Run(ctx, cfg)
		if err != nil {
			log.Printf("seed %d: harness error: %v", seed, err)
			failures++
			continue
		}
		if !res.OK() {
			log.Printf("FAIL %s", res.Summary())
			failures++
		} else if *verbose {
			fmt.Println(res.Summary())
		}

		if *chaos {
			for _, c := range chaosMatrix(seed) {
				cres, err := verify.RunChaos(ctx, cfg, c)
				if err != nil {
					log.Printf("seed %d: chaos harness error: %v", seed, err)
					failures++
					continue
				}
				if !cres.OK() {
					log.Printf("FAIL seed %d chaos %s", seed, cres)
					failures++
				} else if *verbose {
					fmt.Printf("seed %d chaos %s\n", seed, cres)
				}
			}
		}
	}
	if failures > 0 {
		log.Fatalf("%d failure(s) across %d seeds in %s", failures, *seeds, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("OK: %d seeds (chaos=%v, positional=%v) in %s\n",
		*seeds, *chaos, *positional, time.Since(t0).Round(time.Millisecond))
}

// runLive sweeps the interleaved live-index harness across seeds.
func runLive(seeds int, start int64, ops int, positional, verbose bool) {
	ctx := context.Background()
	failures := 0
	t0 := time.Now()
	for i := 0; i < seeds; i++ {
		seed := start + int64(i)
		res, err := verify.RunLive(ctx, verify.LiveConfig{
			Seed:       seed,
			Ops:        ops,
			Positional: positional,
		})
		if err != nil {
			log.Printf("seed %d: live harness error: %v", seed, err)
			failures++
			continue
		}
		if !res.OK() {
			log.Printf("FAIL %s", res.Summary())
			failures++
		} else if verbose {
			fmt.Println(res.Summary())
		}
	}
	if failures > 0 {
		log.Fatalf("%d failure(s) across %d live seeds in %s", failures, seeds, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("OK: %d live seeds (%d ops each, positional=%v) in %s\n",
		seeds, ops, positional, time.Since(t0).Round(time.Millisecond))
}

// chaosMatrix is the per-seed fault set: every kind, the stage faults
// at two file indexes.
func chaosMatrix(seed int64) []verify.ChaosConfig {
	return []verify.ChaosConfig{
		{Fault: verify.FaultNone},
		{Fault: verify.FaultSlowRead, Delay: time.Millisecond},
		{Fault: verify.FaultReadError, At: 0},
		{Fault: verify.FaultReadError, At: 1},
		{Fault: verify.FaultParseError, At: 1},
		{Fault: verify.FaultIndexError, At: 1},
		{Fault: verify.FaultWriteError, At: 1},
		{Fault: verify.FaultCancel, At: 1},
		{Fault: verify.FaultTruncateRun},
		{Fault: verify.FaultBitFlipRun, Seed: seed},
		{Fault: verify.FaultTruncateDict},
		{Fault: verify.FaultGarbageDocmap},
		{Fault: verify.FaultTruncateMerged},
		{Fault: verify.FaultBitFlipMerged, Seed: seed},
	}
}
