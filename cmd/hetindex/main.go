// Command hetindex builds inverted files from a corpus directory using
// the paper's pipelined CPU+GPU strategy and prints the timing report.
//
// Usage:
//
//	hetindex -corpus ./corpus -out ./index -parsers 6 -cpu 2 -gpu 2
//
// Without -corpus, a synthetic ClueWeb09-like collection is generated
// in memory (-files, -scale control its size), which makes the command
// a self-contained demonstration.
//
// With -merge, the paper's optional post-processing merge (§III.F)
// combines the per-run partial lists into a single merged.post after
// the build; subsequent readers then answer each term lookup with one
// positioned read instead of touching every run file.
//
// Observability:
//
//	-progress          live build ticker: docs/s, MB/s, ETA, per-stage utilization
//	-metrics FILE      Prometheus text snapshot of the build metrics ("-" = stdout)
//	-trace FILE        JSONL build trace: per-stage spans (busy + derived stalls),
//	                   buffer-occupancy samples, per-collection token skew
//	-cpuprofile FILE   pprof CPU profile covering the build (and merge, if any)
//	-memprofile FILE   pprof allocation profile written at exit
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"fastinvert"
	"fastinvert/internal/gpu"
	"fastinvert/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetindex: ")
	var (
		corpusDir  = flag.String("corpus", "", "corpus directory (omit to generate in memory)")
		out        = flag.String("out", "", "index output directory (omit to skip persisting)")
		parsers    = flag.Int("parsers", 6, "parallel parser threads (M)")
		cpus       = flag.Int("cpu", 2, "CPU indexers (N1)")
		gpus       = flag.Int("gpu", 2, "GPU indexers (N2, simulated Tesla C1060)")
		files      = flag.Int("files", 16, "synthetic corpus: container files")
		scale      = flag.Float64("scale", 1.0, "synthetic corpus: size factor")
		gpuMem     = flag.Int("gpumem", 256, "simulated GPU device memory (MiB)")
		positional = flag.Bool("positional", false, "build positional postings (enables phrase queries)")
		concurrent = flag.Bool("concurrent", false, "run the goroutine-parallel executor")
		verify     = flag.Bool("verify", false, "run an integrity check on the written index")
		merge      = flag.Bool("merge", false, "run the post-processing merge on the written index (requires -out)")
		codecName  = flag.String("codec", "", "postings codec for run files and the -merge pass: \"auto\" self-tunes per list, or force one registered codec (varbyte, gamma, golomb, bitpack, eliasfano); empty keeps runs on legacy varbyte and lets -merge self-tune")
		progress   = flag.Bool("progress", false, "print a live progress ticker while building")
		metricsOut = flag.String("metrics", "", "write a Prometheus metrics snapshot to this file (\"-\" = stdout)")
		traceOut   = flag.String("trace", "", "write a JSONL build trace to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a pprof allocation profile to this file")
		verbose    = flag.Bool("v", false, "print the per-file throughput series")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	var src fastinvert.Source
	var err error
	if *corpusDir != "" {
		src, err = fastinvert.OpenCorpusDir(*corpusDir)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		src = fastinvert.GenerateCorpus(fastinvert.ClueWeb09Profile(*scale), *files)
	}

	opts := fastinvert.DefaultOptions()
	opts.Parsers = *parsers
	opts.CPUIndexers = *cpus
	opts.GPUs = *gpus
	opts.OutDir = *out
	opts.Positional = *positional
	opts.Concurrent = *concurrent
	opts.RunCodec = *codecName
	g := gpu.TeslaC1060()
	g.DeviceMemBytes = *gpuMem << 20
	opts.GPU = g

	// Any observability flag arms the collector; the build itself pays
	// one nil check per stage boundary otherwise.
	var col *telemetry.Collector
	var tw *telemetry.TraceWriter
	reg := telemetry.NewRegistry()
	if *progress || *metricsOut != "" || *traceOut != "" {
		if *traceOut != "" {
			tw, err = telemetry.CreateTrace(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
		}
		col = telemetry.NewCollector(reg, tw)
		opts.Observer = col
	}

	b, err := fastinvert.NewBuilder(opts)
	if err != nil {
		log.Fatal(err)
	}

	stopTicker := startProgress(*progress, col)
	rep, err := b.Build(src)
	stopTicker()
	if tw != nil {
		if cerr := tw.Close(); cerr != nil {
			log.Fatalf("trace: %v", cerr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("collection: %d files, %d documents, %d tokens, %d distinct terms\n",
		rep.Files, rep.Docs, rep.Tokens, rep.Terms)
	fmt.Printf("input: %.2f MB compressed, %.2f MB uncompressed\n",
		float64(rep.CompressedBytes)/(1<<20), float64(rep.UncompressedBytes)/(1<<20))
	fmt.Printf("pipeline (modeled on %dP + %dC + %dG):\n", *parsers, *cpus, *gpus)
	fmt.Printf("  sampling        %9.4f s\n", rep.SamplingSec)
	fmt.Printf("  parsers span    %9.4f s\n", rep.ParsersSpanSec)
	fmt.Printf("  indexers span   %9.4f s (pre %.4f / indexing %.4f / post %.4f)\n",
		rep.IndexersSpanSec, rep.PreProcessingSec, rep.IndexingSec, rep.PostProcessingSec)
	fmt.Printf("  dict combine    %9.4f s\n", rep.DictCombineSec)
	fmt.Printf("  dict write      %9.4f s\n", rep.DictWriteSec)
	fmt.Printf("  total           %9.4f s\n", rep.TotalSec)
	fmt.Printf("throughput: %.2f MB/s total, %.2f MB/s indexing\n",
		rep.ThroughputMBps, rep.IndexingThroughputMBps)
	fmt.Printf("workload split: CPU %d tokens / %d terms, GPU %d tokens / %d terms\n",
		rep.CPUTokens, rep.CPUTerms, rep.GPUTokens, rep.GPUTerms)
	fmt.Printf("output: %.2f MB postings, %.2f MB dictionary\n",
		float64(rep.PostingsBytes)/(1<<20), float64(rep.DictionaryBytes)/(1<<20))
	if *merge && *out == "" {
		log.Fatal("-merge requires -out")
	}
	if *out != "" {
		fmt.Printf("index written to %s\n", *out)
		if *merge {
			idx, err := fastinvert.OpenWith(*out, fastinvert.ReaderOptions{MergeCodec: *codecName})
			if err != nil {
				log.Fatal(err)
			}
			t0 := time.Now()
			ms, err := idx.Merge()
			idx.Close()
			if err != nil {
				log.Fatalf("merge: %v", err)
			}
			fmt.Printf("merged: %d lists from %d runs into %.2f MB (docs [%d,%d]) in %s\n",
				ms.Lists, ms.Runs, float64(ms.Bytes)/(1<<20), ms.FirstDoc, ms.LastDoc,
				time.Since(t0).Round(time.Millisecond))
			if len(ms.Codecs) > 0 {
				fmt.Printf("merged codecs:")
				names := make([]string, 0, len(ms.Codecs))
				for name := range ms.Codecs {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					fmt.Printf(" %s=%d", name, ms.Codecs[name])
				}
				fmt.Println()
			}
		}
		if *verify {
			vr, err := fastinvert.VerifyIndex(*out)
			if err != nil {
				log.Fatalf("index verification FAILED: %v", err)
			}
			fmt.Printf("verified: %d runs, %d lists, %d postings, %d terms\n",
				vr.Runs, vr.Lists, vr.Postings, vr.Terms)
		}
	}
	if *traceOut != "" {
		st, err := telemetry.ValidateTraceFile(*traceOut)
		if err != nil {
			log.Fatalf("trace validation FAILED: %v", err)
		}
		fmt.Printf("trace: %s (%d spans, %d samples, busy+stall coverage %.0f%%)\n",
			*traceOut, st.Spans, st.Samples, 100*st.BusyStallCoverage)
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		if *metricsOut != "-" {
			fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
		}
	}
	if *verbose {
		fmt.Println("per-file indexing throughput (MB/s):")
		for i, f := range rep.PerFile {
			fmt.Printf("  %4d %-40s %8.2f\n", i, f.Name, f.ThroughputMBps)
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		runtime.GC() // settle live heap so the profile reflects retained + total allocs
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			log.Fatalf("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		fmt.Printf("allocation profile written to %s\n", *memProf)
	}
}

// startProgress launches the live ticker; the returned func stops it
// and prints the final progress line.
func startProgress(enabled bool, col *telemetry.Collector) (stop func()) {
	if !enabled || col == nil {
		return func() {}
	}
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fmt.Fprintf(os.Stderr, "\r%s", progressLine(col.Progress()))
			case <-quit:
				fmt.Fprintf(os.Stderr, "\r%s\n", progressLine(col.Progress()))
				return
			}
		}
	}()
	return func() {
		close(quit)
		wg.Wait()
	}
}

// progressLine renders one ticker line: files, docs/s, MB/s, per-stage
// utilization of the parser and indexer banks, and the ETA.
func progressLine(p telemetry.Progress) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "files %d/%d  %.0f docs/s  %.1f MB/s",
		p.FilesDone, p.FilesTotal, p.DocsPerSec, p.MBPerSec)
	stages := make([]string, 0, len(p.StageUtil))
	for st := range p.StageUtil {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	for _, st := range stages {
		fmt.Fprintf(&sb, "  %s %3.0f%%", st, 100*p.StageUtil[st])
	}
	if p.ETA > 0 {
		fmt.Fprintf(&sb, "  ETA %s", p.ETA.Round(time.Second))
	}
	return sb.String()
}

// writeMetrics renders the registry in Prometheus text format.
func writeMetrics(path string, reg *telemetry.Registry) error {
	if path == "-" {
		return reg.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
