// Command hetindex builds inverted files from a corpus directory using
// the paper's pipelined CPU+GPU strategy and prints the timing report.
//
// Usage:
//
//	hetindex -corpus ./corpus -out ./index -parsers 6 -cpu 2 -gpu 2
//
// Without -corpus, a synthetic ClueWeb09-like collection is generated
// in memory (-files, -scale control its size), which makes the command
// a self-contained demonstration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fastinvert"
	"fastinvert/internal/gpu"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetindex: ")
	var (
		corpusDir  = flag.String("corpus", "", "corpus directory (omit to generate in memory)")
		out        = flag.String("out", "", "index output directory (omit to skip persisting)")
		parsers    = flag.Int("parsers", 6, "parallel parser threads (M)")
		cpus       = flag.Int("cpu", 2, "CPU indexers (N1)")
		gpus       = flag.Int("gpu", 2, "GPU indexers (N2, simulated Tesla C1060)")
		files      = flag.Int("files", 16, "synthetic corpus: container files")
		scale      = flag.Float64("scale", 1.0, "synthetic corpus: size factor")
		gpuMem     = flag.Int("gpumem", 256, "simulated GPU device memory (MiB)")
		positional = flag.Bool("positional", false, "build positional postings (enables phrase queries)")
		concurrent = flag.Bool("concurrent", false, "run the goroutine-parallel executor")
		verify     = flag.Bool("verify", false, "run an integrity check on the written index")
		progress   = flag.Bool("progress", false, "print per-file progress while building")
		verbose    = flag.Bool("v", false, "print the per-file throughput series")
	)
	flag.Parse()

	var src fastinvert.Source
	var err error
	if *corpusDir != "" {
		src, err = fastinvert.OpenCorpusDir(*corpusDir)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		src = fastinvert.GenerateCorpus(fastinvert.ClueWeb09Profile(*scale), *files)
	}

	opts := fastinvert.DefaultOptions()
	opts.Parsers = *parsers
	opts.CPUIndexers = *cpus
	opts.GPUs = *gpus
	opts.OutDir = *out
	opts.Positional = *positional
	opts.Concurrent = *concurrent
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rindexed %d/%d files", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	g := gpu.TeslaC1060()
	g.DeviceMemBytes = *gpuMem << 20
	opts.GPU = g

	b, err := fastinvert.NewBuilder(opts)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := b.Build(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("collection: %d files, %d documents, %d tokens, %d distinct terms\n",
		rep.Files, rep.Docs, rep.Tokens, rep.Terms)
	fmt.Printf("input: %.2f MB compressed, %.2f MB uncompressed\n",
		float64(rep.CompressedBytes)/(1<<20), float64(rep.UncompressedBytes)/(1<<20))
	fmt.Printf("pipeline (modeled on %dP + %dC + %dG):\n", *parsers, *cpus, *gpus)
	fmt.Printf("  sampling        %9.4f s\n", rep.SamplingSec)
	fmt.Printf("  parsers span    %9.4f s\n", rep.ParsersSpanSec)
	fmt.Printf("  indexers span   %9.4f s (pre %.4f / indexing %.4f / post %.4f)\n",
		rep.IndexersSpanSec, rep.PreProcessingSec, rep.IndexingSec, rep.PostProcessingSec)
	fmt.Printf("  dict combine    %9.4f s\n", rep.DictCombineSec)
	fmt.Printf("  dict write      %9.4f s\n", rep.DictWriteSec)
	fmt.Printf("  total           %9.4f s\n", rep.TotalSec)
	fmt.Printf("throughput: %.2f MB/s total, %.2f MB/s indexing\n",
		rep.ThroughputMBps, rep.IndexingThroughputMBps)
	fmt.Printf("workload split: CPU %d tokens / %d terms, GPU %d tokens / %d terms\n",
		rep.CPUTokens, rep.CPUTerms, rep.GPUTokens, rep.GPUTerms)
	fmt.Printf("output: %.2f MB postings, %.2f MB dictionary\n",
		float64(rep.PostingsBytes)/(1<<20), float64(rep.DictionaryBytes)/(1<<20))
	if *out != "" {
		fmt.Printf("index written to %s\n", *out)
		if *verify {
			vr, err := fastinvert.VerifyIndex(*out)
			if err != nil {
				log.Fatalf("index verification FAILED: %v", err)
			}
			fmt.Printf("verified: %d runs, %d lists, %d postings, %d terms\n",
				vr.Runs, vr.Lists, vr.Postings, vr.Terms)
		}
	}
	if *verbose {
		fmt.Println("per-file indexing throughput (MB/s):")
		for i, f := range rep.PerFile {
			fmt.Printf("  %4d %-40s %8.2f\n", i, f.Name, f.ThroughputMBps)
		}
	}
}
