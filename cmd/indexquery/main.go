// Command indexquery looks up terms in an index built by hetindex,
// applying the same normalization (lowercasing + Porter stemming) the
// indexer applied, and prints each term's postings list. With -range
// it fetches only the partial lists overlapping a docID range — the
// per-run output format's fast path (§III.F).
//
// Usage:
//
//	indexquery -index ./index parallelize gpu throughput
//	indexquery -index ./index -range 100:200 parallel
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"fastinvert"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("indexquery: ")
	var (
		indexDir = flag.String("index", "", "index directory (required)")
		docRange = flag.String("range", "", "restrict to docID range lo:hi")
		maxShow  = flag.Int("n", 10, "max postings to print per term")
		locate   = flag.Bool("locate", false, "resolve matching docIDs to source file locations (doc table)")
		prefix   = flag.String("prefix", "", "list indexed terms with this prefix instead of querying")
	)
	flag.Parse()
	if *indexDir == "" || (flag.NArg() == 0 && *prefix == "") {
		fmt.Fprintln(os.Stderr, "usage: indexquery -index DIR [-range lo:hi] [-locate] term... | -prefix p")
		os.Exit(2)
	}
	idx, err := fastinvert.Open(*indexDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d terms, %d runs\n", idx.Terms(), len(idx.Runs()))

	if *prefix != "" {
		s := fastinvert.NewSearcher(idx)
		for _, term := range s.MatchPrefix(*prefix, *maxShow) {
			fmt.Println(" ", term)
		}
		return
	}

	lo, hi := uint32(0), ^uint32(0)
	if *docRange != "" {
		parts := strings.SplitN(*docRange, ":", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -range %q, want lo:hi", *docRange)
		}
		l, err1 := strconv.ParseUint(parts[0], 10, 32)
		h, err2 := strconv.ParseUint(parts[1], 10, 32)
		if err1 != nil || err2 != nil {
			log.Fatalf("bad -range %q", *docRange)
		}
		lo, hi = uint32(l), uint32(h)
	}

	for _, raw := range flag.Args() {
		term := fastinvert.NormalizeTerm(raw)
		list, err := idx.PostingsRange(term, lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%q -> %q: %d postings", raw, term, list.Len())
		if list.Len() == 0 {
			fmt.Println()
			continue
		}
		fmt.Print(" [")
		for i := 0; i < list.Len() && i < *maxShow; i++ {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%d:%d", list.DocIDs[i], list.TFs[i])
		}
		if list.Len() > *maxShow {
			fmt.Printf(" ... +%d more", list.Len()-*maxShow)
		}
		fmt.Println("]")
		if *locate {
			for i := 0; i < list.Len() && i < *maxShow; i++ {
				if file, off, n, ok := idx.DocLocation(list.DocIDs[i]); ok {
					fmt.Printf("    doc %d -> %s @%d (+%d bytes)\n",
						list.DocIDs[i], file, off, n)
				}
			}
		}
	}
}
