// Command benchrunner regenerates the paper's evaluation tables and
// figures (§IV) on the synthetic collections, printing paper-style
// text tables. EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	benchrunner -all
//	benchrunner -table 4 -files 16 -scale 1
//	benchrunner -fig 10
//	benchrunner -ablations
//	benchrunner -json BENCH_stages.json   machine-readable throughput +
//	                                      per-stage busy/stall/utilization breakdowns
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"

	"fastinvert/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrunner: ")
	var (
		all        = flag.Bool("all", false, "run every table, figure and ablation")
		table      = flag.Int("table", 0, "run one table (3, 4, 5 or 6)")
		fig        = flag.Int("fig", 0, "run one figure (10, 11 or 12)")
		ablations  = flag.Bool("ablations", false, "run the ablation suite")
		extensions = flag.Bool("extensions", false, "run the extension experiments (GPU sweep, dictionary memory)")
		files      = flag.Int("files", 16, "container files per collection")
		scale      = flag.Float64("scale", 1.0, "collection size factor")
		trials     = flag.Int("trials", 2, "trials per configuration (best kept)")
		jsonOut    = flag.String("json", "", "write BENCH_*.json stage-level benchmark (throughput + per-stage breakdowns) to this file (\"-\" = stdout)")
		mergebench = flag.Bool("mergebench", false, "compare query latency before/after the post-processing merge")
		buildbench = flag.Bool("buildbench", false, "run the build hot-path benchmark suite (tokenizer, parser, IndexRun, end-to-end build, merge)")
		quick      = flag.Bool("quick", false, "buildbench/codecbench: CI-sized run (seconds instead of minutes)")
		benchOut   = flag.String("benchout", "-", "buildbench/codecbench: write the JSON document to this file (\"-\" = stdout)")
		baseline   = flag.String("baseline", "", "buildbench: embed this previous BENCH_*.json as the baseline and compute deltas")
		compare    = flag.String("compare", "", "buildbench: gate against this committed BENCH_*.json (fails when end-to-end throughput drops > -tolerance)")
		tolerance  = flag.Float64("tolerance", 0.2, "buildbench -compare: allowed end-to-end throughput drop fraction")
		allocTol   = flag.Float64("alloc-tolerance", 0.3, "buildbench -compare: allowed end-to-end allocs/op growth fraction (<=0 disables)")
		codecbench = flag.Bool("codecbench", false, "run the postings-codec ablation (bytes/posting, compression ratio, encode/decode speed per codec and list class)")
		rankbench  = flag.Bool("rankbench", false, "run the block-max top-k retrieval benchmark (exhaustive vs MaxScore vs Block-Max-WAND, plus the warm-dictionary IndexRun recovery number)")
		minSpeedup = flag.Float64("min-speedup", 2.0, "rankbench -compare: required bmw-vs-exhaustive speedup at k=10")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	s := experiments.Scale{Files: *files, Factor: *scale}
	experiments.Trials = *trials
	w := os.Stdout

	ran := false
	runTable := func(n int) {
		ran = true
		switch n {
		case 3:
			rows, err := experiments.TableIII(s)
			check(err)
			experiments.FprintTableIII(w, rows)
		case 4:
			rows, err := experiments.TableIV(s)
			check(err)
			experiments.FprintTableIV(w, rows)
		case 5:
			r, err := experiments.TableV(s)
			check(err)
			experiments.FprintTableV(w, r)
		case 6:
			rows, err := experiments.TableVI(s)
			check(err)
			experiments.FprintTableVI(w, rows)
		default:
			log.Fatalf("no table %d (want 3, 4, 5 or 6)", n)
		}
		fmt.Fprintln(w)
	}
	runFig := func(n int) {
		ran = true
		switch n {
		case 10:
			pts, err := experiments.Fig10(s)
			check(err)
			experiments.FprintFig10(w, pts)
		case 11:
			series, shift, err := experiments.Fig11(s)
			check(err)
			experiments.FprintFig11(w, series, shift)
		case 12:
			rows, err := experiments.Fig12(s)
			check(err)
			experiments.FprintFig12(w, rows)
		default:
			log.Fatalf("no figure %d (want 10, 11 or 12)", n)
		}
		fmt.Fprintln(w)
	}
	runAblations := func() {
		ran = true
		a, err := experiments.AblationRegroup(s)
		check(err)
		experiments.FprintAblation(w, a)
		a, err = experiments.AblationStringCache(s)
		check(err)
		experiments.FprintAblation(w, a)
		a, err = experiments.AblationCoalescing()
		check(err)
		experiments.FprintAblation(w, a)
		a, err = experiments.AblationSplit(s)
		check(err)
		experiments.FprintAblation(w, a)
		rows, err := experiments.AblationTrieHeight(s)
		check(err)
		experiments.FprintTrieHeight(w, rows)
		crows, err := experiments.CompressionComparison(s)
		check(err)
		experiments.FprintCompression(w, crows)
		drows, err := experiments.AblationDecompress(s)
		check(err)
		experiments.FprintDecompress(w, drows)
		fmt.Fprintln(w)
	}
	runExtensions := func() {
		ran = true
		pts, err := experiments.ExtGPUSweep(s)
		check(err)
		experiments.FprintGPUSweep(w, pts)
		rows, err := experiments.ExtDictionaryMemory(s)
		check(err)
		experiments.FprintDictMemory(w, rows)
		prows, err := experiments.ExtPositionalCost(s)
		check(err)
		experiments.FprintPositionalCost(w, prows)
		trows, err := experiments.ExtTransferOverlap(s)
		check(err)
		experiments.FprintTransferOverlap(w, trows)
		fmt.Fprintln(w)
	}

	if *all {
		for _, n := range []int{3, 4, 5, 6} {
			runTable(n)
		}
		for _, n := range []int{10, 11, 12} {
			runFig(n)
		}
		runAblations()
		runExtensions()
	}
	if *extensions && !*all {
		runExtensions()
	}
	if *table != 0 {
		runTable(*table)
	}
	if *fig != 0 {
		runFig(*fig)
	}
	if *ablations && !*all {
		runAblations()
	}
	if *mergebench {
		ran = true
		r, err := experiments.MergeBench(s)
		check(err)
		experiments.FprintMergeBench(w, r)
		fmt.Fprintln(w)
	}
	if *buildbench {
		ran = true
		doc, err := experiments.BuildBenchRun(*quick)
		check(err)
		if *baseline != "" {
			prev, err := experiments.ReadBuildBenchDoc(*baseline)
			check(err)
			doc.EmbedBaseline(prev)
		}
		out := os.Stdout
		if *benchOut != "-" {
			f, err := os.Create(*benchOut)
			check(err)
			check(experiments.WriteBuildBenchDoc(f, doc))
			check(f.Close())
			fmt.Printf("build benchmark written to %s\n", *benchOut)
		} else {
			check(experiments.WriteBuildBenchDoc(out, doc))
		}
		if *compare != "" {
			committed, err := experiments.ReadBuildBenchDoc(*compare)
			check(err)
			check(experiments.CompareBuildBench(committed, doc, *tolerance, *allocTol))
			fmt.Printf("bench gate OK: within %.0f%% of %s\n", *tolerance*100, *compare)
		}
	}
	if *rankbench {
		ran = true
		doc, err := experiments.RankBenchRun(*quick)
		check(err)
		if *baseline != "" {
			prev, err := experiments.ReadBuildBenchDoc(*baseline)
			check(err)
			doc.EmbedIndexRunBaseline(prev)
		}
		if *benchOut != "-" {
			f, err := os.Create(*benchOut)
			check(err)
			check(experiments.WriteRankBenchDoc(f, doc))
			check(f.Close())
			fmt.Printf("rank benchmark written to %s\n", *benchOut)
		} else {
			check(experiments.WriteRankBenchDoc(os.Stdout, doc))
		}
		if *compare != "" {
			committed, err := experiments.ReadRankBenchDoc(*compare)
			check(err)
			check(experiments.CompareRankBench(committed, doc, *minSpeedup, *allocTol))
			fmt.Printf("rank gate OK: bmw k=10 speedup >= %.1fx\n", *minSpeedup)
		}
	}
	if *codecbench {
		ran = true
		doc, err := experiments.CodecBenchRun(*quick)
		check(err)
		if *benchOut != "-" {
			f, err := os.Create(*benchOut)
			check(err)
			check(experiments.WriteCodecBenchDoc(f, doc))
			check(f.Close())
			fmt.Printf("codec benchmark written to %s\n", *benchOut)
		} else {
			experiments.FprintCodecBench(w, doc)
		}
	}
	if *jsonOut != "" {
		ran = true
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			check(err)
			defer f.Close()
			out = f
		}
		check(experiments.WriteStageBenchJSON(out, s))
		if *jsonOut != "-" {
			fmt.Printf("stage benchmark written to %s\n", *jsonOut)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
