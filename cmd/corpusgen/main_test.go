package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failWriter errors after n bytes — a stand-in for a full disk or a
// closed pipe on the report stream.
type failWriter struct{ n int }

var errSink = errors.New("sink failed")

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errSink
	}
	w.n -= len(p)
	return len(p), nil
}

func TestRunSuccess(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	var out bytes.Buffer
	err := run([]string{"-profile", "clueweb", "-files", "2", "-scale", "0.05",
		"-out", dir, "-stats"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "wrote 2 files") || !strings.Contains(got, "documents:") {
		t.Errorf("unexpected output:\n%s", got)
	}
}

// TestRunPropagatesWriteError is the regression test for the silent
// exit-0 on output write failure: run must surface the sink's error.
func TestRunPropagatesWriteError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	err := run([]string{"-files", "1", "-scale", "0.05", "-out", dir}, &failWriter{})
	if !errors.Is(err, errSink) {
		t.Fatalf("run with failing writer = %v, want errSink", err)
	}
	// Same with the error landing on the stats lines.
	err = run([]string{"-files", "1", "-scale", "0.05", "-out", dir, "-stats"},
		&failWriter{n: 64})
	if !errors.Is(err, errSink) {
		t.Fatalf("run with failing stats writer = %v, want errSink", err)
	}
}

func TestRunBadOutDir(t *testing.T) {
	// A regular file where the output directory should go: the
	// directory create must fail and the error must propagate.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(blocker, "sub")
	if err := run([]string{"-files", "1", "-out", bad}, &bytes.Buffer{}); err == nil {
		t.Fatal("run into a path under a regular file succeeded")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-files", "1"}, &bytes.Buffer{}); !errors.Is(err, errUsage) {
		t.Errorf("missing -out: got %v, want errUsage", err)
	}
	if err := run([]string{"-profile", "nope", "-out", t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Error("unknown profile accepted")
	}
}
