// Command corpusgen materializes one of the synthetic document
// collections (ClueWeb09-like, Wikipedia01-07-like, Library-of-
// Congress-like) into a directory of container files, ready for
// hetindex.
//
// Usage:
//
//	corpusgen -profile clueweb -files 16 -scale 1.0 -out ./corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fastinvert"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corpusgen: ")
	var (
		profile = flag.String("profile", "clueweb", "collection profile: clueweb | wikipedia | loc")
		files   = flag.Int("files", 16, "number of container files")
		scale   = flag.Float64("scale", 1.0, "size factor (documents per file and document length)")
		out     = flag.String("out", "", "output directory (required)")
		stats   = flag.Bool("stats", false, "print Table III statistics after generating")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	var p fastinvert.Profile
	switch *profile {
	case "clueweb":
		p = fastinvert.ClueWeb09Profile(*scale)
	case "wikipedia":
		p = fastinvert.WikipediaProfile(*scale)
	case "loc":
		p = fastinvert.LibraryOfCongressProfile(*scale)
	default:
		log.Fatalf("unknown profile %q (want clueweb, wikipedia or loc)", *profile)
	}
	n, err := fastinvert.WriteCorpus(p, *files, *out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d files (%.2f MB stored) to %s\n", *files, float64(n)/(1<<20), *out)

	if *stats {
		src, err := fastinvert.OpenCorpusDir(*out)
		if err != nil {
			log.Fatal(err)
		}
		st, err := fastinvert.CorpusStats(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("documents: %d\nterms:     %d\ntokens:    %d\nuncompressed: %.2f MB\n",
			st.Documents, st.Terms, st.Tokens, float64(st.UncompressedSize)/(1<<20))
	}
}
