// Command corpusgen materializes one of the synthetic document
// collections (ClueWeb09-like, Wikipedia01-07-like, Library-of-
// Congress-like) into a directory of container files, ready for
// hetindex.
//
// Usage:
//
//	corpusgen -profile clueweb -files 16 -scale 1.0 -out ./corpus
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"fastinvert"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corpusgen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) || errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

var errUsage = errors.New("missing required flag")

// run is main without the exit: every result line's write error is
// propagated, so a full disk or a broken stdout pipe fails the command
// instead of silently reporting success.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	var (
		profile = fs.String("profile", "clueweb", "collection profile: clueweb | wikipedia | loc")
		files   = fs.Int("files", 16, "number of container files")
		scale   = fs.Float64("scale", 1.0, "size factor (documents per file and document length)")
		outDir  = fs.String("out", "", "output directory (required)")
		stats   = fs.Bool("stats", false, "print Table III statistics after generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir == "" {
		fs.Usage()
		return errUsage
	}
	var p fastinvert.Profile
	switch *profile {
	case "clueweb":
		p = fastinvert.ClueWeb09Profile(*scale)
	case "wikipedia":
		p = fastinvert.WikipediaProfile(*scale)
	case "loc":
		p = fastinvert.LibraryOfCongressProfile(*scale)
	default:
		return fmt.Errorf("unknown profile %q (want clueweb, wikipedia or loc)", *profile)
	}
	n, err := fastinvert.WriteCorpus(p, *files, *outDir)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(out, "wrote %d files (%.2f MB stored) to %s\n",
		*files, float64(n)/(1<<20), *outDir); err != nil {
		return fmt.Errorf("writing report: %w", err)
	}

	if *stats {
		src, err := fastinvert.OpenCorpusDir(*outDir)
		if err != nil {
			return err
		}
		st, err := fastinvert.CorpusStats(src)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(out, "documents: %d\nterms:     %d\ntokens:    %d\nuncompressed: %.2f MB\n",
			st.Documents, st.Terms, st.Tokens, float64(st.UncompressedSize)/(1<<20)); err != nil {
			return fmt.Errorf("writing stats: %w", err)
		}
	}
	return nil
}
