package fastinvert_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"fastinvert"
)

// TestBuildContextPublic exercises the context-aware build surface:
// cancellation aborts, a live context builds an index that Open can
// serve, and Close flips queries to ErrClosed.
func TestBuildContextPublic(t *testing.T) {
	src := fastinvert.GenerateCorpus(smallProfile(), 3)
	opts := smallOptions()
	opts.OutDir = filepath.Join(t.TempDir(), "idx")

	b, err := fastinvert.NewBuilder(opts)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.BuildContext(canceled, src); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildContext(canceled) = %v, want context.Canceled", err)
	}

	if _, err := b.BuildContext(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	idx, err := fastinvert.Open(opts.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	s := fastinvert.NewSearcher(idx)
	term := fastinvert.NormalizeTerm("parallelized")
	if _, err := s.PostingsCtx(context.Background(), term); err != nil {
		t.Fatal(err)
	}

	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Postings(term); !errors.Is(err, fastinvert.ErrClosed) {
		t.Fatalf("Postings after Close = %v, want ErrClosed", err)
	}
	if _, err := idx.LookupTerm(term); !errors.Is(err, fastinvert.ErrClosed) {
		t.Fatalf("LookupTerm after Close = %v, want ErrClosed", err)
	}
}

// TestExportedSentinels pins the root re-exports to their internal
// identities so errors.Is matches across the API boundary.
func TestExportedSentinels(t *testing.T) {
	src := fastinvert.GenerateCorpus(smallProfile(), 2)
	opts := smallOptions()
	opts.OutDir = filepath.Join(t.TempDir(), "idx")
	b, err := fastinvert.NewBuilder(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(src); err != nil {
		t.Fatal(err)
	}
	idx, err := fastinvert.Open(opts.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	if _, err := idx.LookupTerm("zzznotindexed"); !errors.Is(err, fastinvert.ErrTermNotFound) {
		t.Errorf("LookupTerm miss = %v, want ErrTermNotFound", err)
	}
	s := fastinvert.NewSearcher(idx)
	// The small index is non-positional, so a multi-word phrase query
	// must fail with the typed sentinel.
	term := fastinvert.NormalizeTerm("parallelized")
	if _, err := s.Phrase(term, term); err != nil && !errors.Is(err, fastinvert.ErrNotPositional) {
		t.Errorf("Phrase = %v, want ErrNotPositional (or no error if terms unindexed)", err)
	}
	if fastinvert.ErrCorruptIndex == nil || fastinvert.ErrClosed == nil {
		t.Fatal("sentinels must be non-nil")
	}
}
