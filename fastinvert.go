// Package fastinvert is a Go reproduction of "A Fast Algorithm for
// Constructing Inverted Files on Heterogeneous Platforms" (Zheng Wei
// and Joseph JaJa, IPDPS 2011): a pipelined, parallel inverted-file
// indexer for a multicore CPU with GPU accelerators.
//
// The package exposes the system's public surface:
//
//   - Builder runs the full pipeline — parallel parsers, the hybrid
//     trie + cached-B-tree dictionary, sampling-driven CPU/GPU load
//     split, CPU indexers and simulated-GPU indexers, per-run postings
//     files and the final front-coded dictionary.
//   - GenerateCorpus creates the deterministic synthetic collections
//     standing in for ClueWeb09, Wikipedia01-07 and the Library of
//     Congress crawl.
//   - Open loads a built index for postings queries.
//
// Because Go has no CUDA bindings, the GPU indexer executes on a
// cycle-accounted SIMT simulator; see DESIGN.md for the substitution
// map and EXPERIMENTS.md for the paper-versus-measured results.
//
// Quick start:
//
//	src := fastinvert.GenerateCorpus(fastinvert.ClueWeb09Profile(1), 8)
//	opts := fastinvert.DefaultOptions()
//	opts.OutDir = "./index"
//	b, err := fastinvert.NewBuilder(opts)
//	if err != nil { ... }
//	report, err := b.Build(src)
//	idx, err := fastinvert.Open("./index")
//	list, err := idx.Postings(fastinvert.NormalizeTerm("parallelized"))
package fastinvert

import (
	"context"

	"fastinvert/internal/core"
	"fastinvert/internal/corpus"
	"fastinvert/internal/search"
	"fastinvert/internal/stem"
	"fastinvert/internal/store"
	"fastinvert/internal/trie"
)

// Typed errors, re-exported so callers can match failures with
// errors.Is / errors.As without importing internal packages.
var (
	// ErrTermNotFound reports a dictionary miss from Index.LookupTerm.
	// (Index.Postings folds missing terms into an empty list instead.)
	ErrTermNotFound = store.ErrTermNotFound

	// ErrCorruptIndex reports structurally invalid index bytes — bad
	// magic, failed checksum, truncated table or out-of-bounds entry —
	// from Open, Index queries or VerifyIndex.
	ErrCorruptIndex = store.ErrCorruptIndex

	// ErrClosed reports use of an Index after Close.
	ErrClosed = store.ErrClosed

	// ErrNotPositional reports a phrase query against an index built
	// without Options.Positional.
	ErrNotPositional = search.ErrNotPositional
)

// Options configures a Builder; see core.Config for field docs.
type Options = core.Config

// Report is the full build accounting, structured to regenerate the
// paper's tables (see core.Report).
type Report = core.Report

// FileStat is one per-file throughput sample (Fig. 11).
type FileStat = core.FileStat

// Source is a readable document collection (container files of
// DocDelim-separated documents, possibly gzipped).
type Source = corpus.Source

// Profile parameterizes a synthetic collection.
type Profile = corpus.Profile

// Index reads a built index directory.
type Index = store.IndexReader

// PostingsList is a term's (docID, tf) list.
type PostingsList = store.RunEntry

// DefaultOptions mirrors the paper's best configuration: six parsers,
// two CPU indexers, two (simulated) Tesla C1060 GPUs.
func DefaultOptions() Options { return core.DefaultConfig() }

// Builder drives the pipelined indexing engine.
type Builder struct {
	eng *core.Engine
}

// NewBuilder validates opts and allocates the engine.
func NewBuilder(opts Options) (*Builder, error) {
	eng, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	return &Builder{eng: eng}, nil
}

// Build indexes the source, returning the timing/throughput report.
// When opts.OutDir is set, run files, the doc map and the dictionary
// are persisted there and can be queried via Open. With
// opts.Concurrent the pipeline stages run as goroutines and overlap on
// multicore hosts; the output is identical either way.
func (b *Builder) Build(src Source) (*Report, error) {
	return b.BuildContext(context.Background(), src)
}

// BuildContext is Build under a context: cancellation or deadline
// expiry aborts the pipeline cleanly — concurrent stage goroutines
// drain and exit — and the call returns ctx.Err(). A canceled build
// may leave a partial OutDir behind.
func (b *Builder) BuildContext(ctx context.Context, src Source) (*Report, error) {
	if b.eng.Config().Concurrent {
		return b.eng.BuildConcurrentContext(ctx, src)
	}
	return b.eng.BuildContext(ctx, src)
}

// ParseOnly measures the parsing pipeline alone (Fig. 10 scenario 3).
func (b *Builder) ParseOnly(src Source) (*Report, error) { return b.eng.ParseOnly(src) }

// ClueWeb09Profile returns the ClueWeb09-like synthetic profile at the
// given scale (1 = a few MB; ratios matter, not absolute size).
func ClueWeb09Profile(scale float64) Profile { return corpus.ClueWeb09(scale) }

// WikipediaProfile returns the Wikipedia01-07-like profile.
func WikipediaProfile(scale float64) Profile { return corpus.Wikipedia0107(scale) }

// LibraryOfCongressProfile returns the Library-of-Congress-like profile.
func LibraryOfCongressProfile(scale float64) Profile { return corpus.LibraryOfCongress(scale) }

// GenerateCorpus creates an in-memory lazy source of numFiles
// container files for a profile.
func GenerateCorpus(p Profile, numFiles int) Source {
	return corpus.NewMemSource(corpus.NewGenerator(p), numFiles)
}

// WriteCorpus materializes a synthetic collection into a directory,
// returning total stored bytes.
func WriteCorpus(p Profile, numFiles int, dir string) (int64, error) {
	return corpus.WriteDir(corpus.NewGenerator(p), numFiles, dir)
}

// OpenCorpusDir opens a directory of .txt/.txt.gz container files as a
// source.
func OpenCorpusDir(dir string) (Source, error) { return corpus.OpenDir(dir) }

// CorpusStats scans a source with the full parsing pipeline and
// reports its Table III statistics.
func CorpusStats(src Source) (corpus.Stats, error) { return corpus.ComputeStats(src) }

// Open loads a built index directory for queries. The returned Index
// is safe for concurrent use; call Close to release it — subsequent
// queries return ErrClosed.
func Open(dir string) (*Index, error) { return store.OpenIndex(dir) }

// ReaderOptions tunes how an index directory is opened; see
// store.ReaderOptions for field docs. The zero value matches Open.
type ReaderOptions = store.ReaderOptions

// OpenWith is Open with reader options — notably MergeCodec, which
// selects the postings codec strategy ("auto", "varbyte", ...) the
// next Index.Merge writes with.
func OpenWith(dir string, opts ReaderOptions) (*Index, error) {
	return store.OpenIndexWith(dir, opts)
}

// Searcher evaluates Boolean and ranked queries over an opened index.
type Searcher = search.Searcher

// ScoredDoc is one ranked retrieval result.
type ScoredDoc = search.ScoredDoc

// NewSearcher wraps an opened index for query evaluation (term lookup
// with index-identical normalization, AND/OR, BM25/TF-IDF top-k).
func NewSearcher(idx *Index) *Searcher { return search.New(idx) }

// VerifyReport summarizes an index integrity check.
type VerifyReport = store.VerifyReport

// VerifyIndex checks the structural integrity of a built index: run
// checksums, postings order and doc ranges, dictionary/postings
// cross-references, and auxiliary-file consistency.
func VerifyIndex(dir string) (*VerifyReport, error) { return store.Verify(dir) }

// NormalizeTerm applies the indexing pipeline's term normalization
// (lowercase + Porter stem) to a query word, so lookups match what was
// indexed.
func NormalizeTerm(word string) string {
	b := make([]byte, 0, len(word))
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b = append(b, c)
	}
	return string(stem.Stem(b))
}

// TrieIndex reports the Table I trie-collection index of a normalized
// term — exposed because the collection index is part of the on-disk
// run-file addressing.
func TrieIndex(term string) int { return trie.IndexString(term) }

// NumTrieCollections is the size of the trie table (Table I).
const NumTrieCollections = trie.NumCollections
